//! The compiled simulation kernel: levelized and event-driven evaluation
//! over [`CompiledCircuit`] with caller-owned, reusable scratch state.
//!
//! [`CompiledSim`] is the hot-path counterpart of the legacy
//! [`CombSim`](crate::comb::CombSim) walker. It indexes the flat CSR arrays
//! of a [`CompiledCircuit`] — no per-gate pointer chase, no per-call input
//! buffer — and folds each gate's function directly over its pin span.
//!
//! All mutable per-simulation state (the net value array, the event-queue
//! level buckets, the in-queue flags) lives in a [`SimScratch`] that the
//! caller owns and recycles across calls, so steady-state evaluation
//! performs no allocation at all. Engines that simulate many related
//! passes (sequential fault simulation, incremental test generation) use
//! the *event-driven* entry points ([`CompiledSim::eval_delta`],
//! [`CompiledSim::eval_delta_with`]): after seeding source nets through
//! [`SimScratch::set_source`], only the fanout cone of the nets that
//! actually changed is re-evaluated, and the gates skipped are reported to
//! [`stats`](crate::stats) as *events skipped*.
//!
//! # Pattern widths
//!
//! Every pass exists at two pattern widths, sharing one width-generic core
//! (the private `KernelWord` trait):
//!
//! - **scalar** — one [`W3`] word (64 slots) per net, the historical
//!   layout ([`CompiledSim::eval`] and friends);
//! - **wide** — one [`W3x4`] block ([`LANES`] × 64 = 256 slots) per net
//!   ([`CompiledSim::eval_wide`] and friends), held in a separate
//!   [`SimScratch`] array sized on demand by [`SimScratch::ensure_wide`].
//!
//! The two widths share the change-tracking machinery (it is net-granular,
//! not width-granular), so a scratch must not interleave scalar and wide
//! *delta* passes without a full pass of the new width in between.
//!
//! Throughput counters are in **gate-word** units — one original gate
//! advanced by one 64-slot word — so a wide pass over `G` gates credits
//! `G × LANES` gate evaluations and per-pass accounting satisfies
//! `evals + skipped == num_gates × words` at every width (asserted in
//! debug builds). In debug builds every wide pass additionally validates
//! the dual-rail invariant (`zero & one == 0`) over the whole net array.

use atspeed_circuit::{CompiledCircuit, GateId, GateKind, NetId};

use crate::comb::Overrides;
use crate::logic::{W3x4, LANES, W3};

/// Reusable per-simulation mutable state for [`CompiledSim`].
///
/// Holds the net value array plus the event-propagation machinery (changed
/// source list, level buckets, in-queue flags). Create one per simulation
/// context — e.g. one per worker thread — and recycle it across calls;
/// nothing is reallocated after construction.
///
/// The wide value array (`W3x4` per net) is only allocated when a wide
/// entry point is used: construct with [`SimScratch::new_wide`] or call
/// [`SimScratch::ensure_wide`] before the first [`SimScratch::set_source_wide`].
#[derive(Debug, Clone)]
pub struct SimScratch {
    pub(crate) vals: Vec<W3>,
    // Wide (LANES × 64 slot) values, empty until `ensure_wide`.
    pub(crate) wvals: Vec<W3x4>,
    // Source nets written since the last eval, for the delta path.
    pub(crate) changed: Vec<NetId>,
    pub(crate) dirty: Vec<bool>,
    // Event queue: gates pending re-evaluation, bucketed by level. Stored
    // as intrusive singly-linked lists — `bucket_head[level]` chains
    // through `next_in_bucket[gate]` (sentinel `u32::MAX`) — so the
    // retained footprint is O(levels + gates) flat words instead of one
    // growable `Vec` per level (worst-case O(levels × gates) capacity on
    // deep 100k-gate circuits). Push/pop at the head reproduces the old
    // per-level LIFO order exactly.
    bucket_head: Vec<u32>,
    next_in_bucket: Vec<u32>,
    in_queue: Vec<bool>,
    queued: Vec<GateId>,
}

const NO_GATE: u32 = u32::MAX;

impl SimScratch {
    /// Creates scratch state sized for `cc`, with every net at X. The
    /// value arrays carry [`FUSED_SLICE_PAD`](crate::fused::FUSED_SLICE_PAD)
    /// extra slots past the net count — interior-result scratch for the
    /// fused kernel's branch-free full pass; net-indexed access never
    /// sees them.
    pub fn new(cc: &CompiledCircuit) -> Self {
        SimScratch {
            vals: vec![W3::ALL_X; cc.num_nets() + crate::fused::FUSED_SLICE_PAD],
            wvals: Vec::new(),
            changed: Vec::new(),
            dirty: vec![false; cc.num_nets()],
            bucket_head: vec![NO_GATE; cc.max_level() as usize + 1],
            next_in_bucket: vec![NO_GATE; cc.num_gates()],
            in_queue: vec![false; cc.num_gates()],
            queued: Vec::new(),
        }
    }

    /// Creates scratch state with the wide value array pre-allocated.
    pub fn new_wide(cc: &CompiledCircuit) -> Self {
        let mut s = SimScratch::new(cc);
        s.ensure_wide(cc);
        s
    }

    /// Allocates the wide value array (every net at X) if not already
    /// present. Scalar-only callers never pay for it.
    pub fn ensure_wide(&mut self, cc: &CompiledCircuit) {
        let want = cc.num_nets() + crate::fused::FUSED_SLICE_PAD;
        if self.wvals.len() < want {
            self.wvals.resize(want, W3x4::ALL_X);
        }
    }

    /// The current net values, indexed by [`NetId`]. The slice runs a few
    /// slots past the net count (fused-kernel scratch; see
    /// [`SimScratch::new`]).
    #[inline]
    pub fn values(&self) -> &[W3] {
        &self.vals
    }

    /// The current value of one net.
    #[inline]
    pub fn value(&self, net: NetId) -> W3 {
        self.vals[net.index()]
    }

    /// The current wide net values, indexed by [`NetId`] (empty before the
    /// first wide use).
    #[inline]
    pub fn values_wide(&self) -> &[W3x4] {
        &self.wvals
    }

    /// The current wide value of one net.
    #[inline]
    pub fn value_wide(&self, net: NetId) -> W3x4 {
        self.wvals[net.index()]
    }

    /// Seeds a source net (primary input or flip-flop output), recording a
    /// change event when the value actually differs so a following
    /// [`CompiledSim::eval_delta`] re-evaluates only the affected cone.
    #[inline]
    pub fn set_source(&mut self, net: NetId, w: W3) {
        let i = net.index();
        if self.vals[i] != w {
            self.vals[i] = w;
            if !self.dirty[i] {
                self.dirty[i] = true;
                self.changed.push(net);
            }
        }
    }

    /// Seeds a source net at wide width (see [`SimScratch::set_source`]).
    ///
    /// The change list is shared with the scalar width, so scalar and wide
    /// delta passes must not be interleaved on one scratch without a full
    /// pass of the new width in between.
    ///
    /// # Panics
    ///
    /// Panics if the wide array was never allocated
    /// ([`SimScratch::ensure_wide`]).
    #[inline]
    pub fn set_source_wide(&mut self, net: NetId, w: W3x4) {
        let i = net.index();
        if self.wvals[i] != w {
            self.wvals[i] = w;
            if !self.dirty[i] {
                self.dirty[i] = true;
                self.changed.push(net);
            }
        }
    }

    /// Writes a net value directly, without change tracking. After calling
    /// this, the next evaluation must be a full pass ([`CompiledSim::eval`]
    /// or [`CompiledSim::eval_with`]); the delta path would miss the edit.
    #[inline]
    pub fn set_untracked(&mut self, net: NetId, w: W3) {
        self.vals[net.index()] = w;
    }

    /// Resets every net to `w` (typically [`W3::ALL_X`]). The next
    /// evaluation must be a full pass.
    pub fn fill(&mut self, w: W3) {
        self.vals.fill(w);
        self.clear_events();
    }

    /// Returns the first net whose stored value (scalar or wide) violates
    /// the dual-rail invariant `zero & one == 0`, or `None` when every net
    /// is consistent. Wide and fused passes run this automatically in
    /// debug builds; release-mode harnesses (the differential fuzzer) call
    /// it explicitly.
    pub fn check_dual_rail(&self) -> Option<NetId> {
        // `dirty` is sized exactly to the net count; the value arrays run
        // `FUSED_SLICE_PAD` longer (fused-kernel scratch, not nets).
        let nets = self.dirty.len();
        for (i, v) in self.vals.iter().take(nets).enumerate() {
            if !v.is_consistent() {
                return Some(NetId::from_index(i));
            }
        }
        for (i, v) in self.wvals.iter().take(nets).enumerate() {
            if !v.is_consistent() {
                return Some(NetId::from_index(i));
            }
        }
        None
    }

    pub(crate) fn clear_events(&mut self) {
        for net in self.changed.drain(..) {
            self.dirty[net.index()] = false;
        }
    }
}

/// One simulation value word: the width-generic hooks the pass cores fold
/// over. Implemented for [`W3`] (64 slots) and [`W3x4`] (`LANES` × 64
/// slots); fault-override slot masks broadcast lane-wise at every width.
pub(crate) trait KernelWord: Copy + PartialEq {
    /// 64-slot words per value of this width (the gate-word multiplier).
    const WORDS: u64;
    /// The all-X (no rail set) value, used to initialize register files.
    const ALL_X: Self;
    /// 3-valued AND.
    fn and(self, rhs: Self) -> Self;
    /// 3-valued OR.
    fn or(self, rhs: Self) -> Self;
    /// 3-valued XOR.
    fn xor(self, rhs: Self) -> Self;
    /// 3-valued complement.
    fn not(self) -> Self;
    /// Forces slot-mask `mask` (of every lane) to the binary value `v`.
    fn force(self, v: bool, mask: u64) -> Self;
    /// Dual-rail invariant check.
    fn is_consistent(self) -> bool;
}

impl KernelWord for W3 {
    const WORDS: u64 = 1;
    const ALL_X: Self = W3::ALL_X;
    #[inline]
    fn and(self, rhs: Self) -> Self {
        W3::and(self, rhs)
    }
    #[inline]
    fn or(self, rhs: Self) -> Self {
        W3::or(self, rhs)
    }
    #[inline]
    fn xor(self, rhs: Self) -> Self {
        W3::xor(self, rhs)
    }
    #[inline]
    fn not(self) -> Self {
        W3::not(self)
    }
    #[inline]
    fn force(self, v: bool, mask: u64) -> Self {
        W3::force(self, v, mask)
    }
    #[inline]
    fn is_consistent(self) -> bool {
        W3::is_consistent(self)
    }
}

impl KernelWord for W3x4 {
    const WORDS: u64 = LANES as u64;
    const ALL_X: Self = W3x4::ALL_X;
    #[inline]
    fn and(self, rhs: Self) -> Self {
        W3x4::and(self, rhs)
    }
    #[inline]
    fn or(self, rhs: Self) -> Self {
        W3x4::or(self, rhs)
    }
    #[inline]
    fn xor(self, rhs: Self) -> Self {
        W3x4::xor(self, rhs)
    }
    #[inline]
    fn not(self) -> Self {
        W3x4::not(self)
    }
    #[inline]
    fn force(self, v: bool, mask: u64) -> Self {
        W3x4::force(self, v, mask)
    }
    #[inline]
    fn is_consistent(self) -> bool {
        W3x4::is_consistent(self)
    }
}

/// Applies the stem override for `net` at any width (masks broadcast).
#[inline]
pub(crate) fn apply_stem_g<Wd: KernelWord>(ov: &Overrides, net: NetId, v: Wd) -> Wd {
    let (f0, f1) = ov.stem_masks(net);
    if f0 == 0 && f1 == 0 {
        v
    } else {
        v.force(false, f0).force(true, f1)
    }
}

/// Applies pin overrides for input `pin` of `gate` at any width.
#[inline]
pub(crate) fn apply_gate_pin_g<Wd: KernelWord>(ov: &Overrides, gate: GateId, pin: u8, v: Wd) -> Wd {
    let mut out = v;
    for &(g, p, stuck, mask) in ov.gate_pin_list() {
        if g == gate && p == pin {
            out = out.force(stuck, mask);
        }
    }
    out
}

/// Folds `kind` over two operands (the reduction step of a gate function,
/// inversion excluded).
#[inline]
pub(crate) fn combine<Wd: KernelWord>(kind: GateKind, a: Wd, b: Wd) -> Wd {
    match kind {
        GateKind::And | GateKind::Nand => a.and(b),
        GateKind::Or | GateKind::Nor => a.or(b),
        GateKind::Xor | GateKind::Xnor => a.xor(b),
        // Single-input kinds never reach the reduction step.
        GateKind::Not | GateKind::Buf => a,
    }
}

/// Evaluates one gate by folding its function over the pin span — no
/// staging buffer. The per-kind dispatch is hoisted out of the pin loop so
/// each fold body is a straight run of rail ops the compiler vectorizes.
#[inline]
pub(crate) fn eval_gate_g<Wd: KernelWord>(cc: &CompiledCircuit, vals: &[Wd], gid: GateId) -> Wd {
    let kind = cc.kind(gid);
    let span = cc.inputs(gid);
    let first = vals[span[0].index()];
    let base = match kind {
        GateKind::And | GateKind::Nand => span[1..]
            .iter()
            .fold(first, |acc, &net| acc.and(vals[net.index()])),
        GateKind::Or | GateKind::Nor => span[1..]
            .iter()
            .fold(first, |acc, &net| acc.or(vals[net.index()])),
        GateKind::Xor | GateKind::Xnor => span[1..]
            .iter()
            .fold(first, |acc, &net| acc.xor(vals[net.index()])),
        GateKind::Not | GateKind::Buf => first,
    };
    if kind.inverts() {
        base.not()
    } else {
        base
    }
}

/// Evaluates one gate with input-pin overrides applied (the rare,
/// flagged-gate path).
#[inline]
fn eval_gate_flagged_g<Wd: KernelWord>(
    cc: &CompiledCircuit,
    vals: &[Wd],
    gid: GateId,
    ov: &Overrides,
) -> Wd {
    let kind = cc.kind(gid);
    let span = cc.inputs(gid);
    let mut acc = apply_gate_pin_g(ov, gid, 0, vals[span[0].index()]);
    for (pin, &net) in span.iter().enumerate().skip(1) {
        let w = apply_gate_pin_g(ov, gid, pin as u8, vals[net.index()]);
        acc = combine(kind, acc, w);
    }
    if kind.inverts() {
        acc.not()
    } else {
        acc
    }
}

/// Debug-build dual-rail sweep: every value produced by a wide pass must
/// keep `zero & one == 0` in every lane.
#[inline]
pub(crate) fn debug_check_rails<Wd: KernelWord>(vals: &[Wd]) {
    if cfg!(debug_assertions) {
        for (i, v) in vals.iter().enumerate() {
            debug_assert!(
                v.is_consistent(),
                "dual-rail invariant violated on net index {i}"
            );
        }
    }
}

/// Full levelized pass at any width; `ov` adds fault injection with the
/// legacy override semantics.
fn full_pass_g<Wd: KernelWord>(cc: &CompiledCircuit, vals: &mut [Wd], ov: Option<&Overrides>) {
    assert!(vals.len() >= cc.num_nets());
    // Gate-word accounting: every original gate advances WORDS 64-slot
    // words in one pass, at every width.
    crate::stats::add_gate_evals(cc.num_gates() as u64 * Wd::WORDS);
    match ov {
        None => {
            for &gid in cc.schedule() {
                let out = eval_gate_g(cc, vals, gid);
                vals[cc.output(gid).index()] = out;
            }
        }
        Some(ov) => {
            for &net in ov.stems() {
                if !cc.gate_driven(net) {
                    vals[net.index()] = apply_stem_g(ov, net, vals[net.index()]);
                }
            }
            for &gid in cc.schedule() {
                let out = if ov.is_gate_flagged(gid) {
                    eval_gate_flagged_g(cc, vals, gid, ov)
                } else {
                    eval_gate_g(cc, vals, gid)
                };
                let onet = cc.output(gid);
                vals[onet.index()] = apply_stem_g(ov, onet, out);
            }
        }
    }
}

/// The event-queue half of a [`SimScratch`], split out so the delta core
/// can borrow it alongside either value array.
struct EventQueue<'a> {
    changed: &'a mut Vec<NetId>,
    dirty: &'a mut [bool],
    bucket_head: &'a mut [u32],
    next_in_bucket: &'a mut [u32],
    in_queue: &'a mut [bool],
    queued: &'a mut Vec<GateId>,
}

impl EventQueue<'_> {
    /// Enqueues `gid` for re-evaluation (once); returns its level.
    #[inline]
    fn schedule(&mut self, gid: GateId, cc: &CompiledCircuit) -> u32 {
        let level = cc.gate_level(gid);
        if !self.in_queue[gid.index()] {
            self.in_queue[gid.index()] = true;
            self.queued.push(gid);
            let gi = gid.index();
            self.next_in_bucket[gi] = self.bucket_head[level as usize];
            self.bucket_head[level as usize] = gi as u32;
        }
        level
    }
}

/// Event-driven incremental pass at any width (see
/// [`CompiledSim::eval_delta`] for the contract).
fn delta_pass_g<Wd: KernelWord>(
    cc: &CompiledCircuit,
    vals: &mut [Wd],
    mut q: EventQueue<'_>,
    ov: Option<&Overrides>,
) {
    debug_assert!(q.queued.is_empty());
    // Apply source stem overrides to the fresh seeds. Stored values
    // already satisfy `w == apply_stem(w)` (force is idempotent), so
    // nets whose seed did not change need no re-application.
    if let Some(ov) = ov {
        for i in 0..q.changed.len() {
            let net = q.changed[i];
            if !cc.gate_driven(net) {
                vals[net.index()] = apply_stem_g(ov, net, vals[net.index()]);
            }
        }
    }
    let mut min_level = u32::MAX;
    for i in 0..q.changed.len() {
        let net = q.changed[i];
        q.dirty[net.index()] = false;
        for &gid in cc.fanout_gates(net) {
            min_level = min_level.min(q.schedule(gid, cc));
        }
    }
    q.changed.clear();

    if min_level != u32::MAX {
        let mut level = min_level as usize;
        while level < q.bucket_head.len() {
            while q.bucket_head[level] != NO_GATE {
                let gid = GateId::from_index(q.bucket_head[level] as usize);
                q.bucket_head[level] = q.next_in_bucket[gid.index()];
                let out = match ov {
                    Some(ov) if ov.is_gate_flagged(gid) => eval_gate_flagged_g(cc, vals, gid, ov),
                    _ => eval_gate_g(cc, vals, gid),
                };
                let onet = cc.output(gid);
                let out = match ov {
                    Some(ov) => apply_stem_g(ov, onet, out),
                    None => out,
                };
                if out != vals[onet.index()] {
                    vals[onet.index()] = out;
                    for &g2 in cc.fanout_gates(onet) {
                        q.schedule(g2, cc);
                    }
                }
            }
            level += 1;
        }
    }

    // Per-pass gate-word accounting in original-gate units: the touched
    // and skipped populations partition the gate set exactly, at every
    // width.
    let touched = q.queued.len() as u64;
    let evals = touched * Wd::WORDS;
    let skipped = (cc.num_gates() as u64 - touched) * Wd::WORDS;
    debug_assert_eq!(
        evals + skipped,
        cc.num_gates() as u64 * Wd::WORDS,
        "delta accounting must partition the gate-word population"
    );
    crate::stats::add_gate_evals(evals);
    crate::stats::add_events_skipped(skipped);
    for gid in q.queued.drain(..) {
        q.in_queue[gid.index()] = false;
    }
}

/// Levelized/event-driven evaluator over a [`CompiledCircuit`].
#[derive(Debug, Clone, Copy)]
pub struct CompiledSim<'a> {
    cc: &'a CompiledCircuit,
}

impl<'a> CompiledSim<'a> {
    /// Creates an evaluator over `cc`.
    pub fn new(cc: &'a CompiledCircuit) -> Self {
        CompiledSim { cc }
    }

    /// The compiled circuit being evaluated.
    #[inline]
    pub fn circuit(&self) -> &'a CompiledCircuit {
        self.cc
    }

    /// Full levelized pass, fault-free: fills in every gate output from the
    /// seeded source nets.
    pub fn eval(&self, s: &mut SimScratch) {
        s.clear_events();
        self.eval_slice(&mut s.vals);
    }

    /// Full levelized pass with fault injection (same override semantics as
    /// the legacy [`CombSim::eval_with`](crate::comb::CombSim::eval_with)).
    pub fn eval_with(&self, s: &mut SimScratch, ov: &Overrides) {
        s.clear_events();
        self.eval_with_slice(&mut s.vals, ov);
    }

    /// Full levelized pass over a caller-owned value slice. Prefer the
    /// [`SimScratch`]-based entry points; this exists for engines that keep
    /// their own value overlays (e.g. the PPSFP good machine).
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the circuit's net count.
    pub fn eval_slice(&self, vals: &mut [W3]) {
        full_pass_g(self.cc, vals, None);
    }

    /// Full levelized pass with fault injection over a caller-owned value
    /// slice (see [`CompiledSim::eval_slice`]).
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the circuit's net count.
    pub fn eval_with_slice(&self, vals: &mut [W3], ov: &Overrides) {
        full_pass_g(self.cc, vals, Some(ov));
    }

    /// Event-driven incremental pass, fault-free: re-evaluates only the
    /// fanout cone of the source nets changed through
    /// [`SimScratch::set_source`] since the last evaluation.
    ///
    /// Requires that `s` holds a consistent fault-free evaluation apart
    /// from those seeds (i.e. the previous call was [`CompiledSim::eval`]
    /// or `eval_delta` on the same scratch).
    pub fn eval_delta(&self, s: &mut SimScratch) {
        let SimScratch {
            vals,
            changed,
            dirty,
            bucket_head,
            next_in_bucket,
            in_queue,
            queued,
            ..
        } = s;
        delta_pass_g(
            self.cc,
            vals,
            EventQueue {
                changed,
                dirty,
                bucket_head,
                next_in_bucket,
                in_queue,
                queued,
            },
            None,
        );
    }

    /// Event-driven incremental pass with fault injection.
    ///
    /// Requires that `s` holds a consistent evaluation under the *same*
    /// override set `ov` apart from the seeds (i.e. the previous call was
    /// [`CompiledSim::eval_with`] or `eval_delta_with` with an unchanged
    /// `ov`). Values outside the changed cone stay valid precisely because
    /// neither their inputs nor the injected faults moved.
    pub fn eval_delta_with(&self, s: &mut SimScratch, ov: &Overrides) {
        let SimScratch {
            vals,
            changed,
            dirty,
            bucket_head,
            next_in_bucket,
            in_queue,
            queued,
            ..
        } = s;
        delta_pass_g(
            self.cc,
            vals,
            EventQueue {
                changed,
                dirty,
                bucket_head,
                next_in_bucket,
                in_queue,
                queued,
            },
            Some(ov),
        );
    }

    /// Wide ([`LANES`] × 64 slot) full levelized pass, fault-free.
    ///
    /// Allocates the scratch's wide array on first use; seeds go through
    /// [`SimScratch::set_source_wide`].
    pub fn eval_wide(&self, s: &mut SimScratch) {
        s.ensure_wide(self.cc);
        s.clear_events();
        self.eval_slice_wide(&mut s.wvals);
    }

    /// Wide full levelized pass with fault injection. Override slot masks
    /// apply to every lane (the same fault assignment against `LANES` × 64
    /// patterns).
    pub fn eval_with_wide(&self, s: &mut SimScratch, ov: &Overrides) {
        s.ensure_wide(self.cc);
        s.clear_events();
        self.eval_with_slice_wide(&mut s.wvals, ov);
    }

    /// Wide full levelized pass over a caller-owned block slice.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the circuit's net count.
    pub fn eval_slice_wide(&self, vals: &mut [W3x4]) {
        full_pass_g(self.cc, vals, None);
        debug_check_rails(&vals[..self.cc.num_nets()]);
    }

    /// Wide full levelized pass with fault injection over a caller-owned
    /// block slice.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the circuit's net count.
    pub fn eval_with_slice_wide(&self, vals: &mut [W3x4], ov: &Overrides) {
        full_pass_g(self.cc, vals, Some(ov));
        debug_check_rails(&vals[..self.cc.num_nets()]);
    }

    /// Wide event-driven incremental pass, fault-free (same contract as
    /// [`CompiledSim::eval_delta`], over the wide value array).
    pub fn eval_delta_wide(&self, s: &mut SimScratch) {
        self.delta_wide(s, None);
    }

    /// Wide event-driven incremental pass with fault injection (same
    /// contract as [`CompiledSim::eval_delta_with`]).
    pub fn eval_delta_with_wide(&self, s: &mut SimScratch, ov: &Overrides) {
        self.delta_wide(s, Some(ov));
    }

    fn delta_wide(&self, s: &mut SimScratch, ov: Option<&Overrides>) {
        s.ensure_wide(self.cc);
        let SimScratch {
            wvals,
            changed,
            dirty,
            bucket_head,
            next_in_bucket,
            in_queue,
            queued,
            ..
        } = s;
        delta_pass_g(
            self.cc,
            wvals,
            EventQueue {
                changed,
                dirty,
                bucket_head,
                next_in_bucket,
                in_queue,
                queued,
            },
            ov,
        );
        debug_check_rails(&s.wvals[..self.cc.num_nets()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::CombSim;
    use crate::fault::{Fault, FaultSite, FaultUniverse};
    use crate::logic::V3;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::synth::{generate, SynthSpec};
    use atspeed_circuit::Netlist;

    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed | 1;
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }

    fn random_w3(r: &mut impl FnMut() -> u64) -> W3 {
        // Random mix of 0/1/X per slot, dual-rail consistent.
        let a = r();
        let b = r();
        W3 {
            zero: a & !b,
            one: !a & b,
        }
    }

    fn random_w3x4(r: &mut impl FnMut() -> u64) -> W3x4 {
        let mut w = W3x4::ALL_X;
        for l in 0..LANES {
            w.set_lane(l, random_w3(r));
        }
        w
    }

    fn seed_sources(nl: &Netlist, s: &mut SimScratch, r: &mut impl FnMut() -> u64) {
        for &pi in nl.pis() {
            s.set_source(pi, random_w3(r));
        }
        for ff in nl.ffs() {
            s.set_source(ff.q(), random_w3(r));
        }
    }

    /// Seeds the wide scratch with per-lane words and returns a scalar
    /// scratch seeded lane-by-lane for cross-checking.
    fn seed_sources_wide(
        nl: &Netlist,
        s: &mut SimScratch,
        r: &mut impl FnMut() -> u64,
    ) -> Vec<(NetId, W3x4)> {
        let mut seeds = Vec::new();
        for &pi in nl.pis() {
            let w = random_w3x4(r);
            s.set_source_wide(pi, w);
            seeds.push((pi, w));
        }
        for ff in nl.ffs() {
            let w = random_w3x4(r);
            s.set_source_wide(ff.q(), w);
            seeds.push((ff.q(), w));
        }
        seeds
    }

    #[test]
    fn full_pass_matches_legacy_walker() {
        for nl in [
            s27(),
            generate(&SynthSpec::new("k", 6, 4, 9, 200, 7)).unwrap(),
        ] {
            let cc = nl.compiled();
            let sim = CompiledSim::new(cc);
            let mut legacy = CombSim::new(&nl);
            let mut s = SimScratch::new(cc);
            let mut r = rng(0xfeed);
            for _ in 0..10 {
                seed_sources(&nl, &mut s, &mut r);
                let mut vals = s.values().to_vec();
                sim.eval(&mut s);
                legacy.eval(&mut vals);
                assert_eq!(s.values(), vals.as_slice());
            }
        }
    }

    #[test]
    fn full_pass_with_overrides_matches_legacy_walker() {
        let nl = generate(&SynthSpec::new("ko", 6, 4, 9, 200, 13)).unwrap();
        let cc = nl.compiled();
        let u = FaultUniverse::full(&nl);
        let sim = CompiledSim::new(cc);
        let mut legacy = CombSim::new(&nl);
        let mut s = SimScratch::new(cc);
        let mut ov = Overrides::new(&nl);
        let mut r = rng(0xbeef);
        let faults: Vec<_> = u.all_ids().collect();
        for chunk in faults.chunks(63) {
            ov.clear();
            for (k, &fid) in chunk.iter().enumerate() {
                ov.add(u.fault(fid), 1u64 << (k + 1));
            }
            seed_sources(&nl, &mut s, &mut r);
            let mut vals = s.values().to_vec();
            sim.eval_with(&mut s, &ov);
            legacy.eval_with(&mut vals, &ov);
            assert_eq!(s.values(), vals.as_slice());
        }
    }

    #[test]
    fn delta_pass_matches_full_pass() {
        let nl = generate(&SynthSpec::new("kd", 6, 4, 9, 200, 21)).unwrap();
        let cc = nl.compiled();
        let sim = CompiledSim::new(cc);
        let mut fast = SimScratch::new(cc);
        let mut slow = SimScratch::new(cc);
        let mut r = rng(0xabc);
        seed_sources(&nl, &mut fast, &mut r);
        sim.eval(&mut fast);
        for round in 0..20 {
            // Change a few sources only; occasionally none at all.
            let n = round % 4;
            for _ in 0..n {
                let pick = (r() as usize) % (nl.num_pis() + nl.num_ffs());
                let net = if pick < nl.num_pis() {
                    nl.pis()[pick]
                } else {
                    nl.ffs()[pick - nl.num_pis()].q()
                };
                fast.set_source(net, random_w3(&mut r));
            }
            sim.eval_delta(&mut fast);
            for net in nl.net_ids() {
                slow.set_untracked(net, fast.value(net));
            }
            sim.eval(&mut slow);
            assert_eq!(fast.values(), slow.values(), "round {round}");
        }
    }

    #[test]
    fn delta_pass_with_overrides_matches_full_pass() {
        let nl = generate(&SynthSpec::new("kdo", 6, 4, 9, 200, 33)).unwrap();
        let cc = nl.compiled();
        let u = FaultUniverse::full(&nl);
        let sim = CompiledSim::new(cc);
        let mut fast = SimScratch::new(cc);
        let mut r = rng(0x777);
        let faults: Vec<_> = u.representatives().to_vec();
        for chunk in faults.chunks(63) {
            let mut ov = Overrides::new(&nl);
            for (k, &fid) in chunk.iter().enumerate() {
                ov.add(u.fault(fid), 1u64 << (k + 1));
            }
            seed_sources(&nl, &mut fast, &mut r);
            sim.eval_with(&mut fast, &ov);
            for _ in 0..5 {
                seed_sources(&nl, &mut fast, &mut r);
                sim.eval_delta_with(&mut fast, &ov);
                let mut slow = SimScratch::new(cc);
                for &pi in nl.pis() {
                    slow.set_untracked(pi, fast.value(pi));
                }
                for ff in nl.ffs() {
                    slow.set_untracked(ff.q(), fast.value(ff.q()));
                }
                sim.eval_with(&mut slow, &ov);
                assert_eq!(fast.values(), slow.values());
            }
        }
    }

    #[test]
    fn delta_with_source_stem_override_tracks_reseed() {
        // A stem fault on a PI must keep forcing the faulty slot across
        // delta re-seeds of that same PI.
        let nl = s27();
        let cc = nl.compiled();
        let sim = CompiledSim::new(cc);
        let pi = nl.pis()[0];
        let mut ov = Overrides::new(&nl);
        ov.add(
            Fault {
                site: FaultSite::Stem(pi),
                stuck: true,
            },
            0b10,
        );
        let mut s = SimScratch::new(cc);
        for &p in nl.pis() {
            s.set_source(p, W3::ALL_ZERO);
        }
        for ff in nl.ffs() {
            s.set_source(ff.q(), W3::ALL_ZERO);
        }
        sim.eval_with(&mut s, &ov);
        assert_eq!(s.value(pi).get(1), V3::One);
        // Reseed the faulty PI to 0 again; the override must re-apply.
        s.set_source(pi, W3::ALL_ZERO);
        sim.eval_delta_with(&mut s, &ov);
        assert_eq!(s.value(pi).get(0), V3::Zero);
        assert_eq!(s.value(pi).get(1), V3::One);
    }

    #[test]
    fn set_source_records_no_event_for_equal_value() {
        let nl = s27();
        let cc = nl.compiled();
        let sim = CompiledSim::new(cc);
        let mut s = SimScratch::new(cc);
        for &p in nl.pis() {
            s.set_source(p, W3::ALL_ONE);
        }
        for ff in nl.ffs() {
            s.set_source(ff.q(), W3::ALL_ONE);
        }
        sim.eval(&mut s);
        let before = s.values().to_vec();
        // Identical reseed: the delta pass must be a no-op.
        for &p in nl.pis() {
            s.set_source(p, W3::ALL_ONE);
        }
        sim.eval_delta(&mut s);
        assert_eq!(s.values(), before.as_slice());
    }

    /// Every lane of a wide full pass must equal a scalar full pass seeded
    /// with that lane's words, with and without overrides.
    #[test]
    fn wide_full_pass_matches_scalar_per_lane() {
        for nl in [
            s27(),
            generate(&SynthSpec::new("kw", 6, 4, 9, 200, 55)).unwrap(),
        ] {
            let cc = nl.compiled();
            let u = FaultUniverse::full(&nl);
            let sim = CompiledSim::new(cc);
            let mut wide = SimScratch::new_wide(cc);
            let mut r = rng(0xD00D);

            let mut ov = Overrides::new(&nl);
            for (k, &fid) in u.representatives().iter().take(40).enumerate() {
                ov.add(u.fault(fid), 1u64 << (k % 63 + 1));
            }

            for round in 0..4 {
                let seeds = seed_sources_wide(&nl, &mut wide, &mut r);
                if round % 2 == 0 {
                    sim.eval_wide(&mut wide);
                } else {
                    sim.eval_with_wide(&mut wide, &ov);
                }
                for l in 0..LANES {
                    let mut scalar = SimScratch::new(cc);
                    for &(net, w) in &seeds {
                        scalar.set_source(net, w.lane(l));
                    }
                    if round % 2 == 0 {
                        sim.eval(&mut scalar);
                    } else {
                        sim.eval_with(&mut scalar, &ov);
                    }
                    for net in nl.net_ids() {
                        assert_eq!(
                            wide.value_wide(net).lane(l),
                            scalar.value(net),
                            "round {round} lane {l} net {}",
                            nl.net_name(net)
                        );
                    }
                }
                assert_eq!(wide.check_dual_rail(), None);
            }
        }
    }

    /// Wide delta passes must match wide full passes on the same seeds.
    #[test]
    fn wide_delta_matches_wide_full_pass() {
        let nl = generate(&SynthSpec::new("kwd", 6, 4, 9, 200, 77)).unwrap();
        let cc = nl.compiled();
        let u = FaultUniverse::full(&nl);
        let sim = CompiledSim::new(cc);
        let mut r = rng(0xACE);
        for use_ov in [false, true] {
            let mut ov = Overrides::new(&nl);
            if use_ov {
                for (k, &fid) in u.representatives().iter().take(30).enumerate() {
                    ov.add(u.fault(fid), 1u64 << (k % 63 + 1));
                }
            }
            let mut fast = SimScratch::new_wide(cc);
            seed_sources_wide(&nl, &mut fast, &mut r);
            if use_ov {
                sim.eval_with_wide(&mut fast, &ov);
            } else {
                sim.eval_wide(&mut fast);
            }
            for round in 0..6 {
                // Reseed a random subset of sources.
                for &pi in nl.pis() {
                    if r() & 1 == 0 {
                        fast.set_source_wide(pi, random_w3x4(&mut r));
                    }
                }
                for ff in nl.ffs() {
                    if r() & 1 == 0 {
                        fast.set_source_wide(ff.q(), random_w3x4(&mut r));
                    }
                }
                if use_ov {
                    sim.eval_delta_with_wide(&mut fast, &ov);
                } else {
                    sim.eval_delta_wide(&mut fast);
                }
                let mut slow = SimScratch::new_wide(cc);
                for &pi in nl.pis() {
                    slow.set_source_wide(pi, fast.value_wide(pi));
                }
                for ff in nl.ffs() {
                    slow.set_source_wide(ff.q(), fast.value_wide(ff.q()));
                }
                if use_ov {
                    sim.eval_with_wide(&mut slow, &ov);
                } else {
                    sim.eval_wide(&mut slow);
                }
                assert_eq!(
                    fast.values_wide(),
                    slow.values_wide(),
                    "ov {use_ov} round {round}"
                );
            }
        }
    }

    /// Gate-eval counters are in gate-word units: a scalar full pass
    /// credits `G`, a wide pass `G × LANES`, and delta accounting
    /// partitions `G × words` between evals and skips at both widths.
    #[test]
    fn counters_are_gate_word_consistent_across_widths() {
        let nl = generate(&SynthSpec::new("kc", 6, 4, 9, 200, 91)).unwrap();
        let cc = nl.compiled();
        let g = cc.num_gates() as u64;
        let sim = CompiledSim::new(cc);
        let mut r = rng(0x5CA1E);

        let scope = crate::stats::scoped();
        crate::stats::set_phase("scalar");
        let mut s = SimScratch::new(cc);
        seed_sources(&nl, &mut s, &mut r);
        sim.eval(&mut s);
        crate::stats::flush();
        let scalar = scope.report().totals().gate_evals;
        assert_eq!(scalar, g, "scalar full pass credits one word per gate");

        let scope = crate::stats::scoped();
        crate::stats::set_phase("wide");
        let mut w = SimScratch::new_wide(cc);
        seed_sources_wide(&nl, &mut w, &mut r);
        sim.eval_wide(&mut w);
        crate::stats::flush();
        let wide = scope.report().totals().gate_evals;
        assert_eq!(
            wide,
            g * LANES as u64,
            "wide full pass credits LANES words per gate"
        );

        // Delta at both widths: evals + skipped must equal G × words.
        let scope = crate::stats::scoped();
        crate::stats::set_phase("delta");
        seed_sources(&nl, &mut s, &mut r);
        sim.eval_delta(&mut s);
        crate::stats::flush();
        let t = scope.report().totals();
        assert_eq!(t.gate_evals + t.events_skipped, g);

        let scope = crate::stats::scoped();
        crate::stats::set_phase("delta-wide");
        seed_sources_wide(&nl, &mut w, &mut r);
        sim.eval_delta_wide(&mut w);
        crate::stats::flush();
        let t = scope.report().totals();
        assert_eq!(t.gate_evals + t.events_skipped, g * LANES as u64);
        assert!(t.gate_evals > 0, "the reseed touched at least one gate");
    }
}
