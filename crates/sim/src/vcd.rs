//! VCD (Value Change Dump) export of fault-free simulation traces.
//!
//! Lets a simulated test be inspected in any waveform viewer (GTKWave and
//! friends): primary inputs, primary outputs, and flip-flop states, one
//! timestep per functional clock cycle.

use std::fmt::Write as _;

use atspeed_circuit::Netlist;

use crate::fsim_seq::GoodTrace;
use crate::logic::V3;
use crate::vectors::Sequence;

fn vcd_id(i: usize) -> String {
    // Printable identifier characters per the VCD grammar (! to ~).
    let mut n = i;
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

fn vcd_value(v: V3) -> char {
    match v {
        V3::Zero => '0',
        V3::One => '1',
        V3::X => 'x',
    }
}

/// Renders the trace of one simulated test as VCD text.
///
/// `seq` must be the stimulus that produced `trace` (the primary-input
/// values are taken from it; outputs and states from the trace).
///
/// # Panics
///
/// Panics if the trace and sequence lengths differ.
pub fn write_vcd(nl: &Netlist, seq: &Sequence, trace: &GoodTrace) -> String {
    assert_eq!(
        seq.len(),
        trace.po_values.len(),
        "sequence/trace length mismatch"
    );
    let mut out = String::new();
    let _ = writeln!(out, "$date (atspeed simulation) $end");
    let _ = writeln!(out, "$version atspeed VCD writer $end");
    let _ = writeln!(out, "$timescale 1 ns $end");
    let _ = writeln!(out, "$scope module {} $end", nl.name());

    let mut ids = Vec::new();
    let mut next_id = 0usize;
    let mut declare = |out: &mut String, prefix: &str, name: &str, ids: &mut Vec<String>| {
        let id = vcd_id(next_id);
        next_id += 1;
        let _ = writeln!(out, "$var wire 1 {id} {prefix}{name} $end");
        ids.push(id);
    };
    for &pi in nl.pis() {
        declare(&mut out, "pi_", nl.net_name(pi), &mut ids);
    }
    for &po in nl.pos() {
        declare(&mut out, "po_", nl.net_name(po), &mut ids);
    }
    for ff in nl.ffs() {
        declare(&mut out, "ff_", nl.net_name(ff.q()), &mut ids);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    let n_pi = nl.num_pis();
    let n_po = nl.num_pos();
    let mut last: Vec<Option<V3>> = vec![None; ids.len()];
    for t in 0..seq.len() {
        let _ = writeln!(out, "#{t}");
        let emit = |out: &mut String, idx: usize, v: V3, last: &mut Vec<Option<V3>>| {
            if last[idx] != Some(v) {
                let _ = writeln!(out, "{}{}", vcd_value(v), ids[idx]);
                last[idx] = Some(v);
            }
        };
        for (i, &v) in seq.vector(t).iter().enumerate() {
            emit(&mut out, i, v, &mut last);
        }
        for (i, &v) in trace.po_values[t].iter().enumerate() {
            emit(&mut out, n_pi + i, v, &mut last);
        }
        for (i, &v) in trace.states[t].iter().enumerate() {
            emit(&mut out, n_pi + n_po + i, v, &mut last);
        }
    }
    let _ = writeln!(out, "#{}", seq.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsim_seq::SeqSim;
    use crate::vectors::parse_values;
    use atspeed_circuit::bench_fmt::s27;

    fn trace_of(rows: &[&str]) -> (atspeed_circuit::Netlist, Sequence, GoodTrace) {
        let nl = s27();
        let seq: Sequence = rows.iter().map(|r| parse_values(r)).collect();
        let trace = SeqSim::new(&nl).run(&parse_values("000"), &seq);
        (nl, seq, trace)
    }

    #[test]
    fn vcd_has_required_sections() {
        let (nl, seq, trace) = trace_of(&["1010", "0101", "1111"]);
        let vcd = write_vcd(&nl, &seq, &trace);
        for section in [
            "$timescale",
            "$scope module s27",
            "$enddefinitions",
            "$upscope",
        ] {
            assert!(vcd.contains(section), "missing {section}");
        }
        // One $var per PI, PO, FF.
        let vars = vcd.matches("$var wire").count();
        assert_eq!(vars, 4 + 1 + 3);
        // Timesteps 0..=len.
        assert!(vcd.contains("#0\n"));
        assert!(vcd.contains("#3\n"));
    }

    #[test]
    fn values_only_emitted_on_change() {
        let (nl, seq, trace) = trace_of(&["0000", "0000", "0000"]);
        let vcd = write_vcd(&nl, &seq, &trace);
        // All inputs constant: each signal appears at most once after #0
        // beyond its initial emission.
        let t0 = vcd.split("#0").nth(1).unwrap();
        let t1_onward = t0.split("#1").nth(1).unwrap();
        let changes = t1_onward
            .lines()
            .filter(|l| l.starts_with('0') || l.starts_with('1') || l.starts_with('x'))
            .count();
        // The state settles after at most a couple of cycles.
        assert!(
            changes <= 8,
            "too many changes for constant input: {changes}"
        );
    }

    #[test]
    fn ids_are_printable_and_unique() {
        assert_eq!(vcd_id(0), "!");
        assert_eq!(vcd_id(93), "~");
        assert_eq!(vcd_id(94), "!\"");
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            assert!(seen.insert(vcd_id(i)), "duplicate id at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_trace() {
        let (nl, seq, trace) = trace_of(&["0000", "1111"]);
        let shorter = seq.prefix(0);
        let _ = write_vcd(&nl, &shorter, &trace);
    }
}
