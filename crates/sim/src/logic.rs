//! Three-valued logic, packed 64 simulation slots per word.
//!
//! A [`W3`] holds one net's value in 64 independent simulation slots
//! ("machines"). Each slot is 0, 1, or X (unknown), encoded dual-rail: bit
//! `s` of [`W3::zero`] is set when slot `s` is known-0, bit `s` of
//! [`W3::one`] when it is known-1, and neither for X. The invariant
//! `zero & one == 0` holds for every value produced by this module.

use std::fmt;

use atspeed_circuit::GateKind;

/// A scalar 3-valued logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum V3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl V3 {
    /// Converts a boolean to a binary logic value.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            V3::One
        } else {
            V3::Zero
        }
    }

    /// Returns the boolean value if binary, `None` for X.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            V3::Zero => Some(false),
            V3::One => Some(true),
            V3::X => None,
        }
    }

    /// Returns `true` for 0 or 1, `false` for X.
    #[inline]
    pub fn is_known(self) -> bool {
        !matches!(self, V3::X)
    }

    /// Logical complement; X stays X.
    #[inline]
    #[allow(clippy::should_implement_trait)] // domain name; `V3: !` would be odd
    pub fn not(self) -> Self {
        match self {
            V3::Zero => V3::One,
            V3::One => V3::Zero,
            V3::X => V3::X,
        }
    }

    /// 3-valued AND (0 dominates X).
    #[inline]
    pub fn and(self, rhs: V3) -> V3 {
        match (self, rhs) {
            (V3::Zero, _) | (_, V3::Zero) => V3::Zero,
            (V3::One, V3::One) => V3::One,
            _ => V3::X,
        }
    }

    /// 3-valued OR (1 dominates X).
    #[inline]
    pub fn or(self, rhs: V3) -> V3 {
        match (self, rhs) {
            (V3::One, _) | (_, V3::One) => V3::One,
            (V3::Zero, V3::Zero) => V3::Zero,
            _ => V3::X,
        }
    }

    /// 3-valued XOR (X absorbs).
    #[inline]
    pub fn xor(self, rhs: V3) -> V3 {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => V3::from_bool(a ^ b),
            _ => V3::X,
        }
    }

    /// Evaluates a gate of the given kind over scalar inputs.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `inputs` is empty.
    pub fn eval_gate(kind: GateKind, inputs: &[V3]) -> V3 {
        debug_assert!(!inputs.is_empty(), "gate with no inputs");
        let first = inputs[0];
        let base = match kind {
            GateKind::And | GateKind::Nand => inputs[1..].iter().fold(first, |acc, &v| acc.and(v)),
            GateKind::Or | GateKind::Nor => inputs[1..].iter().fold(first, |acc, &v| acc.or(v)),
            GateKind::Xor | GateKind::Xnor => inputs[1..].iter().fold(first, |acc, &v| acc.xor(v)),
            GateKind::Not | GateKind::Buf => first,
        };
        if kind.inverts() {
            base.not()
        } else {
            base
        }
    }
}

impl fmt::Display for V3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            V3::Zero => "0",
            V3::One => "1",
            V3::X => "x",
        })
    }
}

impl From<bool> for V3 {
    fn from(b: bool) -> Self {
        V3::from_bool(b)
    }
}

/// 64 packed 3-valued slots (see the module docs for the encoding).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct W3 {
    /// Bit set ⇒ slot is known-0.
    pub zero: u64,
    /// Bit set ⇒ slot is known-1.
    pub one: u64,
}

impl W3 {
    /// All 64 slots X.
    pub const ALL_X: W3 = W3 { zero: 0, one: 0 };
    /// All 64 slots 0.
    pub const ALL_ZERO: W3 = W3 {
        zero: u64::MAX,
        one: 0,
    };
    /// All 64 slots 1.
    pub const ALL_ONE: W3 = W3 {
        zero: 0,
        one: u64::MAX,
    };

    /// Broadcasts a scalar value to all 64 slots.
    #[inline]
    pub fn broadcast(v: V3) -> Self {
        match v {
            V3::Zero => W3::ALL_ZERO,
            V3::One => W3::ALL_ONE,
            V3::X => W3::ALL_X,
        }
    }

    /// Reads one slot.
    #[inline]
    pub fn get(self, slot: usize) -> V3 {
        debug_assert!(slot < 64);
        let bit = 1u64 << slot;
        if self.one & bit != 0 {
            V3::One
        } else if self.zero & bit != 0 {
            V3::Zero
        } else {
            V3::X
        }
    }

    /// Writes one slot.
    #[inline]
    pub fn set(&mut self, slot: usize, v: V3) {
        debug_assert!(slot < 64);
        let bit = 1u64 << slot;
        self.zero &= !bit;
        self.one &= !bit;
        match v {
            V3::Zero => self.zero |= bit,
            V3::One => self.one |= bit,
            V3::X => {}
        }
    }

    /// Mask of slots holding a binary (non-X) value.
    #[inline]
    pub fn known(self) -> u64 {
        self.zero | self.one
    }

    /// Forces the slots in `mask` to the binary value `v`.
    #[inline]
    pub fn force(self, v: bool, mask: u64) -> Self {
        if v {
            W3 {
                zero: self.zero & !mask,
                one: self.one | mask,
            }
        } else {
            W3 {
                zero: self.zero | mask,
                one: self.one & !mask,
            }
        }
    }

    /// Mask of slots that differ from `other` where **both** are binary.
    #[inline]
    pub fn diff_known(self, other: W3) -> u64 {
        (self.zero & other.one) | (self.one & other.zero)
    }

    /// 3-valued AND.
    #[inline]
    pub fn and(self, rhs: W3) -> Self {
        W3 {
            zero: self.zero | rhs.zero,
            one: self.one & rhs.one,
        }
    }

    /// 3-valued OR.
    #[inline]
    pub fn or(self, rhs: W3) -> Self {
        W3 {
            zero: self.zero & rhs.zero,
            one: self.one | rhs.one,
        }
    }

    /// 3-valued XOR.
    #[inline]
    pub fn xor(self, rhs: W3) -> Self {
        W3 {
            zero: (self.zero & rhs.zero) | (self.one & rhs.one),
            one: (self.zero & rhs.one) | (self.one & rhs.zero),
        }
    }

    /// 3-valued complement.
    #[inline]
    #[allow(clippy::should_implement_trait)] // mirrors the scalar `V3::not`
    pub fn not(self) -> Self {
        W3 {
            zero: self.one,
            one: self.zero,
        }
    }

    /// Evaluates a gate of the given kind over its input words.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `inputs` is empty.
    #[inline]
    pub fn eval_gate(kind: GateKind, inputs: &[W3]) -> W3 {
        debug_assert!(!inputs.is_empty(), "gate with no inputs");
        let first = inputs[0];
        let base = match kind {
            GateKind::And | GateKind::Nand => inputs[1..].iter().fold(first, |acc, &w| acc.and(w)),
            GateKind::Or | GateKind::Nor => inputs[1..].iter().fold(first, |acc, &w| acc.or(w)),
            GateKind::Xor | GateKind::Xnor => inputs[1..].iter().fold(first, |acc, &w| acc.xor(w)),
            GateKind::Not | GateKind::Buf => first,
        };
        if kind.inverts() {
            base.not()
        } else {
            base
        }
    }

    /// Checks the dual-rail invariant (`zero & one == 0`).
    #[inline]
    pub fn is_consistent(self) -> bool {
        self.zero & self.one == 0
    }
}

impl fmt::Debug for W3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W3(zero={:#018x}, one={:#018x})", self.zero, self.one)
    }
}

/// Number of 64-slot words in a wide block ([`W3x4`]): 4 × 64 = 256 slots.
pub const LANES: usize = 4;

/// [`LANES`] packed [`W3`] words evaluated together (256 simulation slots).
///
/// Lanes are stored rail-major — all `zero` lanes, then all `one` lanes —
/// so each rail is one contiguous 256-bit run the compiler can lower to
/// vector loads and stores (the whole block is exactly one 64-byte cache
/// line). Slot `s` of lane `l` is pattern slot `l * 64 + s` of the block.
/// The dual-rail invariant `zero & one == 0` holds lane-wise, exactly as
/// for [`W3`].
///
/// With the `wide-simd` cargo feature (nightly-only; never enabled in CI)
/// the rail operations go through `std::simd::u64x4` explicitly; on stable
/// the plain lane loops below are written so LLVM auto-vectorizes them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct W3x4 {
    /// Bit `s` of lane `l` set ⇒ slot `l * 64 + s` is known-0.
    pub zero: [u64; LANES],
    /// Bit `s` of lane `l` set ⇒ slot `l * 64 + s` is known-1.
    pub one: [u64; LANES],
}

#[cfg(feature = "wide-simd")]
#[inline]
fn lanes_and(a: [u64; LANES], b: [u64; LANES]) -> [u64; LANES] {
    (std::simd::u64x4::from_array(a) & std::simd::u64x4::from_array(b)).to_array()
}

#[cfg(feature = "wide-simd")]
#[inline]
fn lanes_or(a: [u64; LANES], b: [u64; LANES]) -> [u64; LANES] {
    (std::simd::u64x4::from_array(a) | std::simd::u64x4::from_array(b)).to_array()
}

#[cfg(not(feature = "wide-simd"))]
#[inline]
fn lanes_and(a: [u64; LANES], b: [u64; LANES]) -> [u64; LANES] {
    let mut out = [0u64; LANES];
    for i in 0..LANES {
        out[i] = a[i] & b[i];
    }
    out
}

#[cfg(not(feature = "wide-simd"))]
#[inline]
fn lanes_or(a: [u64; LANES], b: [u64; LANES]) -> [u64; LANES] {
    let mut out = [0u64; LANES];
    for i in 0..LANES {
        out[i] = a[i] | b[i];
    }
    out
}

impl W3x4 {
    /// All 256 slots X.
    pub const ALL_X: W3x4 = W3x4 {
        zero: [0; LANES],
        one: [0; LANES],
    };

    /// The same 64-slot word in every lane.
    #[inline]
    pub fn splat(w: W3) -> Self {
        W3x4 {
            zero: [w.zero; LANES],
            one: [w.one; LANES],
        }
    }

    /// Reads one lane as a [`W3`].
    #[inline]
    pub fn lane(self, l: usize) -> W3 {
        W3 {
            zero: self.zero[l],
            one: self.one[l],
        }
    }

    /// Writes one lane.
    #[inline]
    pub fn set_lane(&mut self, l: usize, w: W3) {
        self.zero[l] = w.zero;
        self.one[l] = w.one;
    }

    /// 3-valued AND, lane-wise.
    #[inline]
    pub fn and(self, rhs: W3x4) -> Self {
        W3x4 {
            zero: lanes_or(self.zero, rhs.zero),
            one: lanes_and(self.one, rhs.one),
        }
    }

    /// 3-valued OR, lane-wise.
    #[inline]
    pub fn or(self, rhs: W3x4) -> Self {
        W3x4 {
            zero: lanes_and(self.zero, rhs.zero),
            one: lanes_or(self.one, rhs.one),
        }
    }

    /// 3-valued XOR, lane-wise.
    #[inline]
    pub fn xor(self, rhs: W3x4) -> Self {
        W3x4 {
            zero: lanes_or(lanes_and(self.zero, rhs.zero), lanes_and(self.one, rhs.one)),
            one: lanes_or(lanes_and(self.zero, rhs.one), lanes_and(self.one, rhs.zero)),
        }
    }

    /// 3-valued complement (rail swap).
    #[inline]
    #[allow(clippy::should_implement_trait)] // mirrors `W3::not`
    pub fn not(self) -> Self {
        W3x4 {
            zero: self.one,
            one: self.zero,
        }
    }

    /// Forces slot-mask `mask` of **every** lane to the binary value `v`.
    ///
    /// Fault-override masks address the 64 per-word slots; a wide block
    /// carries the same fault assignment in each lane (4 × 64 patterns
    /// against one override set), so the mask broadcasts lane-wise.
    #[inline]
    pub fn force(self, v: bool, mask: u64) -> Self {
        let m = [mask; LANES];
        if v {
            W3x4 {
                zero: lanes_and(self.zero, [!mask; LANES]),
                one: lanes_or(self.one, m),
            }
        } else {
            W3x4 {
                zero: lanes_or(self.zero, m),
                one: lanes_and(self.one, [!mask; LANES]),
            }
        }
    }

    /// Evaluates a gate of the given kind over its input blocks.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `inputs` is empty.
    #[inline]
    pub fn eval_gate(kind: GateKind, inputs: &[W3x4]) -> W3x4 {
        debug_assert!(!inputs.is_empty(), "gate with no inputs");
        let first = inputs[0];
        let base = match kind {
            GateKind::And | GateKind::Nand => inputs[1..].iter().fold(first, |acc, &w| acc.and(w)),
            GateKind::Or | GateKind::Nor => inputs[1..].iter().fold(first, |acc, &w| acc.or(w)),
            GateKind::Xor | GateKind::Xnor => inputs[1..].iter().fold(first, |acc, &w| acc.xor(w)),
            GateKind::Not | GateKind::Buf => first,
        };
        if kind.inverts() {
            base.not()
        } else {
            base
        }
    }

    /// Checks the dual-rail invariant (`zero & one == 0`) on every lane.
    #[inline]
    pub fn is_consistent(self) -> bool {
        (0..LANES).all(|l| self.zero[l] & self.one[l] == 0)
    }
}

impl fmt::Debug for W3x4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W3x4(")?;
        for l in 0..LANES {
            if l > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:?}", self.lane(l))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_not_and_known() {
        assert_eq!(V3::Zero.not(), V3::One);
        assert_eq!(V3::X.not(), V3::X);
        assert!(V3::One.is_known());
        assert!(!V3::X.is_known());
        assert_eq!(V3::from_bool(true), V3::One);
        assert_eq!(V3::One.to_bool(), Some(true));
        assert_eq!(V3::X.to_bool(), None);
    }

    #[test]
    fn get_set_round_trip() {
        let mut w = W3::ALL_X;
        w.set(0, V3::One);
        w.set(5, V3::Zero);
        w.set(63, V3::One);
        assert_eq!(w.get(0), V3::One);
        assert_eq!(w.get(5), V3::Zero);
        assert_eq!(w.get(63), V3::One);
        assert_eq!(w.get(1), V3::X);
        w.set(0, V3::X);
        assert_eq!(w.get(0), V3::X);
        assert!(w.is_consistent());
    }

    /// Exhaustive check of the packed ops against scalar 3-valued truth
    /// tables, one (a,b) pair per slot.
    #[test]
    fn packed_ops_match_scalar_semantics() {
        let vals = [V3::Zero, V3::One, V3::X];
        let mut a = W3::ALL_X;
        let mut b = W3::ALL_X;
        let mut cases = Vec::new();
        for (i, &va) in vals.iter().enumerate() {
            for (j, &vb) in vals.iter().enumerate() {
                let slot = i * 3 + j;
                a.set(slot, va);
                b.set(slot, vb);
                cases.push((slot, va, vb));
            }
        }
        let scalar_and = |x: V3, y: V3| match (x, y) {
            (V3::Zero, _) | (_, V3::Zero) => V3::Zero,
            (V3::One, V3::One) => V3::One,
            _ => V3::X,
        };
        let scalar_or = |x: V3, y: V3| match (x, y) {
            (V3::One, _) | (_, V3::One) => V3::One,
            (V3::Zero, V3::Zero) => V3::Zero,
            _ => V3::X,
        };
        let scalar_xor = |x: V3, y: V3| match (x.to_bool(), y.to_bool()) {
            (Some(p), Some(q)) => V3::from_bool(p ^ q),
            _ => V3::X,
        };
        for &(slot, va, vb) in &cases {
            assert_eq!(a.and(b).get(slot), scalar_and(va, vb), "AND {va}{vb}");
            assert_eq!(a.or(b).get(slot), scalar_or(va, vb), "OR {va}{vb}");
            assert_eq!(a.xor(b).get(slot), scalar_xor(va, vb), "XOR {va}{vb}");
            assert_eq!(a.not().get(slot), va.not(), "NOT {va}");
        }
        assert!(a.and(b).is_consistent());
        assert!(a.xor(b).is_consistent());
    }

    #[test]
    fn eval_gate_all_kinds() {
        let t = W3::ALL_ONE;
        let f = W3::ALL_ZERO;
        assert_eq!(W3::eval_gate(GateKind::And, &[t, f]), f);
        assert_eq!(W3::eval_gate(GateKind::Nand, &[t, f]), t);
        assert_eq!(W3::eval_gate(GateKind::Or, &[t, f]), t);
        assert_eq!(W3::eval_gate(GateKind::Nor, &[t, f]), f);
        assert_eq!(W3::eval_gate(GateKind::Xor, &[t, f, t]), f);
        assert_eq!(W3::eval_gate(GateKind::Xnor, &[t, f]), f);
        assert_eq!(W3::eval_gate(GateKind::Not, &[t]), f);
        assert_eq!(W3::eval_gate(GateKind::Buf, &[f]), f);
    }

    #[test]
    fn controlling_value_dominates_x() {
        let x = W3::ALL_X;
        assert_eq!(
            W3::eval_gate(GateKind::And, &[W3::ALL_ZERO, x]),
            W3::ALL_ZERO
        );
        assert_eq!(W3::eval_gate(GateKind::Or, &[W3::ALL_ONE, x]), W3::ALL_ONE);
        assert_eq!(W3::eval_gate(GateKind::Xor, &[W3::ALL_ONE, x]), W3::ALL_X);
        assert_eq!(
            W3::eval_gate(GateKind::Nand, &[W3::ALL_ZERO, x]),
            W3::ALL_ONE
        );
    }

    #[test]
    fn force_overrides_slots() {
        let w = W3::ALL_X.force(true, 0b1010);
        assert_eq!(w.get(1), V3::One);
        assert_eq!(w.get(3), V3::One);
        assert_eq!(w.get(0), V3::X);
        let w2 = w.force(false, 0b0010);
        assert_eq!(w2.get(1), V3::Zero);
        assert!(w2.is_consistent());
    }

    #[test]
    fn diff_known_ignores_x() {
        let mut a = W3::ALL_X;
        let mut b = W3::ALL_X;
        a.set(0, V3::One);
        b.set(0, V3::Zero); // differ, both known
        a.set(1, V3::One);
        b.set(1, V3::One); // equal
        a.set(2, V3::One); // b unknown
        b.set(3, V3::Zero); // a unknown
        assert_eq!(a.diff_known(b), 0b0001);
    }

    #[test]
    fn broadcast_matches_constants() {
        assert_eq!(W3::broadcast(V3::Zero), W3::ALL_ZERO);
        assert_eq!(W3::broadcast(V3::One), W3::ALL_ONE);
        assert_eq!(W3::broadcast(V3::X), W3::ALL_X);
    }

    /// Deterministic word stream for the wide-block tests.
    fn word_stream(mut s: u64) -> impl FnMut() -> W3 {
        move || {
            let mut next = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let a = next();
            let b = next();
            W3 {
                zero: a & !b,
                one: !a & b,
            }
        }
    }

    /// Every wide op must equal the scalar [`W3`] op applied lane-wise.
    #[test]
    fn wide_ops_match_per_lane_w3_ops() {
        let mut next = word_stream(0x1234_5678_9abc_def0);
        for _ in 0..32 {
            let mut a = W3x4::ALL_X;
            let mut b = W3x4::ALL_X;
            for l in 0..LANES {
                a.set_lane(l, next());
                b.set_lane(l, next());
            }
            for l in 0..LANES {
                assert_eq!(a.and(b).lane(l), a.lane(l).and(b.lane(l)));
                assert_eq!(a.or(b).lane(l), a.lane(l).or(b.lane(l)));
                assert_eq!(a.xor(b).lane(l), a.lane(l).xor(b.lane(l)));
                assert_eq!(a.not().lane(l), a.lane(l).not());
                assert_eq!(a.force(true, 0xF0F0).lane(l), a.lane(l).force(true, 0xF0F0));
                assert_eq!(
                    a.force(false, 0x0FF0).lane(l),
                    a.lane(l).force(false, 0x0FF0)
                );
            }
            assert!(a.and(b).is_consistent());
            assert!(a.xor(b).is_consistent());
        }
    }

    #[test]
    fn wide_eval_gate_matches_per_lane_eval() {
        let mut next = word_stream(0xfeed_beef_cafe_f00d);
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ];
        for kind in kinds {
            let n = if matches!(kind, GateKind::Not | GateKind::Buf) {
                1
            } else {
                3
            };
            let inputs: Vec<W3x4> = (0..n)
                .map(|_| {
                    let mut w = W3x4::ALL_X;
                    for l in 0..LANES {
                        w.set_lane(l, next());
                    }
                    w
                })
                .collect();
            let wide = W3x4::eval_gate(kind, &inputs);
            for l in 0..LANES {
                let scalar: Vec<W3> = inputs.iter().map(|w| w.lane(l)).collect();
                assert_eq!(wide.lane(l), W3::eval_gate(kind, &scalar), "{kind:?}");
            }
            assert!(wide.is_consistent());
        }
    }

    #[test]
    fn splat_and_lane_round_trip() {
        let w = W3 {
            zero: 0xAA,
            one: 0x55,
        };
        let wide = W3x4::splat(w);
        for l in 0..LANES {
            assert_eq!(wide.lane(l), w);
        }
        assert!(wide.is_consistent());
        assert_eq!(W3x4::ALL_X.lane(0), W3::ALL_X);
    }
}
