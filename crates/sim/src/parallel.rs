//! Multi-threaded fault simulation: [`ParallelFsim`] shards work across
//! `std::thread::scope` workers with no external dependencies.
//!
//! Two sharding shapes cover every engine in this crate:
//!
//! - **fault sharding** (`detect_block`, `detect_matrix`, `detect`,
//!   `detect_observed`, `profiles`): the collapsed fault list is dealt into
//!   balanced partitions — levelization-aware, so each partition receives a
//!   spread of fault-site depths and thus comparable propagation work — and
//!   each worker runs the single-threaded engine on its partition. A
//!   per-(test, fault) outcome never depends on which other faults share a
//!   pass, so results are scattered back by original index and are
//!   *identical* to the single-threaded engines';
//! - **test sharding with cross-partition dropping** (`detect_all`,
//!   `detect_union`): tests are claimed from a work queue and faults are
//!   shared through one atomic detection bitmap, so a worker stops
//!   simulating a fault the moment any partition has detected it. Detection
//!   is a monotone union over tests, so the final detected set is
//!   independent of interleaving — again identical to the serial engines.
//!
//! `threads = 1` (the [`SimConfig`] default) dispatches straight to the
//! single-threaded engines, reproducing their behavior bit-for-bit.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use atspeed_circuit::Netlist;

use crate::fault::{FaultId, FaultUniverse};
use crate::fsim_comb::{CombFaultSim, CombTest};
use crate::fsim_seq::{DetectionProfile, FinalObserve, SeqFaultSim};
use crate::stats;
use crate::vectors::{Sequence, State};

/// Which evaluation kernel the simulation engines run on.
///
/// Every engine produces **identical results** at every kind — the kinds
/// trade evaluation strategy, not semantics:
///
/// - [`EngineKind::Scalar`] — one 64-slot [`W3`](crate::logic::W3) word
///   per net, gate at a time (the historical kernel, and the default);
/// - [`EngineKind::Wide`] — [`LANES`](crate::logic::LANES) × 64-slot
///   [`W3x4`](crate::logic::W3x4) blocks per net, gate at a time, for
///   engines with a batchable pattern dimension;
/// - [`EngineKind::WideFused`] — wide blocks over the cone-fused unit
///   schedule ([`FusedSim`](crate::fused::FusedSim)). After a fused pass
///   only root and source nets hold live values, so engines that read
///   arbitrary interior nets (the PPSFP good machine, PODEM's forward
///   sim) degrade to [`EngineKind::Wide`] — each engine's docs state its
///   behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Scalar gate-at-a-time kernel (default).
    #[default]
    Scalar,
    /// SIMD-widened gate-at-a-time kernel.
    Wide,
    /// SIMD-widened kernel over the cone-fused unit schedule.
    WideFused,
}

impl EngineKind {
    /// All kinds, for exhaustive sweeps in tests and fuzzing.
    pub const ALL: [EngineKind; 3] = [EngineKind::Scalar, EngineKind::Wide, EngineKind::WideFused];
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(EngineKind::Scalar),
            "wide" => Ok(EngineKind::Wide),
            "wide+fused" | "wide-fused" | "fused" => Ok(EngineKind::WideFused),
            other => Err(format!(
                "unknown engine `{other}` (expected scalar, wide, or wide+fused)"
            )),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Scalar => "scalar",
            EngineKind::Wide => "wide",
            EngineKind::WideFused => "wide+fused",
        })
    }
}

/// Threading and kernel configuration for the simulation substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Worker threads. `1` reproduces the single-threaded engines
    /// bit-for-bit; `0` means one per available core.
    pub threads: usize,
    /// Work-unit granularity: faults per partition for fault-sharded
    /// calls, 64-test blocks (or scan tests) per claim for test-sharded
    /// calls. `0` picks a balanced size automatically.
    pub chunk_size: usize,
    /// Evaluation kernel. Engines built through this config inherit it;
    /// every kind produces identical results (see [`EngineKind`]).
    pub engine: EngineKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            threads: 1,
            chunk_size: 0,
            engine: EngineKind::Scalar,
        }
    }
}

impl SimConfig {
    /// Reads `SIM_THREADS` (unset means `1`, serial; `0` means one thread
    /// per available core) and `SIM_ENGINE` (`scalar`, `wide`, or
    /// `wide+fused`; unset means `scalar`) from the environment,
    /// **rejecting** unparsable values.
    ///
    /// Prefer this in anything long-running or gated: a typo like
    /// `SIM_ENGINE=widefused` silently running the slow scalar engine can
    /// mask a performance regression (or a CI kernel gate) for a long
    /// time. [`SimConfig::from_env`] is the lenient wrapper that falls
    /// back to the defaults but logs a `warn!` event, so the typo is at
    /// least visible.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unparsable variable.
    pub fn try_from_env() -> Result<Self, String> {
        let threads = match std::env::var("SIM_THREADS") {
            Ok(s) => s
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad SIM_THREADS `{s}` (expected a thread count)"))?,
            Err(_) => 1,
        };
        let engine = match std::env::var("SIM_ENGINE") {
            Ok(s) => s
                .parse::<EngineKind>()
                .map_err(|e| format!("bad SIM_ENGINE: {e}"))?,
            Err(_) => EngineKind::default(),
        };
        Ok(SimConfig {
            threads,
            chunk_size: 0,
            engine,
        })
    }

    /// Reads `SIM_THREADS` and `SIM_ENGINE` from the environment like
    /// [`SimConfig::try_from_env`], but each unparsable variable falls
    /// back to its default (serial threads, scalar engine) after emitting
    /// a `warn!` log event naming the bad value — never silently. A valid
    /// variable is honored even when the other one is broken.
    pub fn from_env() -> Self {
        let threads = match std::env::var("SIM_THREADS") {
            Ok(s) => s.trim().parse::<usize>().unwrap_or_else(|_| {
                atspeed_trace::warn!(
                    "sim.config",
                    "ignoring unparsable SIM_THREADS; running serial";
                    value = s,
                );
                1
            }),
            Err(_) => 1,
        };
        let engine = match std::env::var("SIM_ENGINE") {
            Ok(s) => s.parse::<EngineKind>().unwrap_or_else(|e| {
                atspeed_trace::warn!(
                    "sim.config",
                    "ignoring unparsable SIM_ENGINE; using the scalar kernel";
                    value = s,
                    reason = e,
                );
                EngineKind::default()
            }),
            Err(_) => EngineKind::default(),
        };
        SimConfig {
            threads,
            chunk_size: 0,
            engine,
        }
    }

    /// A config with the given worker-thread count.
    pub fn with_threads(threads: usize) -> Self {
        SimConfig {
            threads,
            chunk_size: 0,
            engine: EngineKind::Scalar,
        }
    }

    /// This config with a different evaluation kernel.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The actual worker count for a call: `threads` (resolving `0` to the
    /// core count) capped by the number of shardable work items.
    pub fn effective_threads(&self, work_items: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        requested.max(1).min(work_items.max(1))
    }
}

/// A monotone shared detection bitmap (one bit per fault index).
///
/// Relaxed ordering is sound here: bits only ever turn on, and a worker
/// that misses a freshly set bit merely re-simulates a fault and arrives
/// at the same detection — never a different result.
struct SharedDetectMap {
    words: Vec<AtomicU64>,
}

impl SharedDetectMap {
    fn new(len: usize) -> Self {
        SharedDetectMap {
            words: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn is_set(&self, i: usize) -> bool {
        self.words[i / 64].load(Ordering::Relaxed) & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`; returns whether this call newly set it.
    #[inline]
    fn set(&self, i: usize) -> bool {
        let prev = self.words[i / 64].fetch_or(1u64 << (i % 64), Ordering::Relaxed);
        prev & (1u64 << (i % 64)) == 0
    }

    fn snapshot(&self, len: usize) -> Vec<bool> {
        (0..len).map(|i| self.is_set(i)).collect()
    }
}

/// An internal inconsistency between two detection views of the same
/// (tests, faults) pair, found by [`ParallelFsim::check_matrix_consistency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixMismatch {
    /// The row-union of `detect_matrix` disagrees with the `detect_all`
    /// bitmap for one fault.
    UnionDisagrees {
        /// Index of the fault in the caller's fault list.
        fault_index: usize,
        /// What the matrix row-union says.
        matrix_detected: bool,
        /// What the dropping bitmap says.
        bitmap_detected: bool,
    },
    /// A matrix row has bits set beyond the test count (padding bits of the
    /// last word must stay zero).
    PaddingBitsSet {
        /// Index of the fault in the caller's fault list.
        fault_index: usize,
    },
}

impl std::fmt::Display for MatrixMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixMismatch::UnionDisagrees {
                fault_index,
                matrix_detected,
                bitmap_detected,
            } => write!(
                f,
                "fault {fault_index}: detect_matrix union says {matrix_detected}, \
                 detect_all bitmap says {bitmap_detected}"
            ),
            MatrixMismatch::PaddingBitsSet { fault_index } => write!(
                f,
                "fault {fault_index}: detect_matrix row sets bits beyond the test count"
            ),
        }
    }
}

impl std::error::Error for MatrixMismatch {}

/// Multi-threaded front end over the fault-simulation engines.
pub struct ParallelFsim<'a> {
    nl: &'a Netlist,
    cfg: SimConfig,
    order_hint: Option<Vec<u32>>,
}

impl<'a> ParallelFsim<'a> {
    /// Creates a parallel simulator for `nl` under `cfg`.
    pub fn new(nl: &'a Netlist, cfg: SimConfig) -> Self {
        ParallelFsim {
            nl,
            cfg,
            order_hint: None,
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// The threading configuration.
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// Installs a detection-likelihood hint: `hint[k]` scores
    /// `faults[k]` of subsequent calls (higher = more likely detected).
    /// Likely-detected faults are then front-loaded within each partition
    /// so they detect — and drop — early. Purely an ordering hint; results
    /// are unaffected.
    pub fn with_order_hint(mut self, hint: Vec<u32>) -> Self {
        self.order_hint = Some(hint);
        self
    }

    /// Builds an order hint from a previous run's detection profiles:
    /// earlier primary-output detection scores higher, undetected scores
    /// zero.
    pub fn hint_from_profiles(profiles: &[DetectionProfile]) -> Vec<u32> {
        profiles
            .iter()
            .map(|p| match p.earliest_detection() {
                Some(t) => u32::MAX - t,
                None => 0,
            })
            .collect()
    }

    /// Deals fault indices into `units` balanced partitions.
    ///
    /// Faults are ordered by the hint (descending) when one is installed,
    /// otherwise by the circuit level of the fault site — so round-robin
    /// dealing spreads shallow (large-cone, expensive) and deep (cheap)
    /// faults evenly across partitions.
    fn fault_partitions(
        &self,
        faults: &[FaultId],
        universe: &FaultUniverse,
        units: usize,
    ) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..faults.len()).collect();
        match &self.order_hint {
            Some(hint) if hint.len() == faults.len() => {
                order.sort_by_key(|&k| std::cmp::Reverse(hint[k]));
            }
            _ => {
                order.sort_by_key(|&k| self.nl.level(universe.site_net(self.nl, faults[k])));
            }
        }
        let mut parts = vec![Vec::with_capacity(faults.len() / units + 1); units];
        for (i, k) in order.into_iter().enumerate() {
            parts[i % units].push(k);
        }
        parts.retain(|p| !p.is_empty());
        parts
    }

    /// How many fault partitions a call with `n` faults should use.
    ///
    /// With an explicit `chunk_size` the caller controls granularity.
    /// Otherwise we oversubscribe: exactly `threads` partitions makes the
    /// whole call wait on its slowest partition, and at high fault counts
    /// the level-spread deal cannot fully equalize propagation cost — a
    /// partition that drew a few extra large-cone faults stalls the join.
    /// Dealing ~4 claims per worker lets the atomic claim queue in
    /// [`ParallelFsim::run_partitioned`] rebalance stragglers dynamically,
    /// while each partition stays large enough to amortize engine reuse.
    fn fault_units(&self, n: usize, threads: usize) -> usize {
        if self.cfg.chunk_size > 0 {
            n.div_ceil(self.cfg.chunk_size).max(threads)
        } else if threads <= 1 {
            1
        } else {
            (threads * 4).min(n.max(1))
        }
    }

    /// Runs `work` over every partition on `threads` scoped workers,
    /// claiming partitions from a shared queue; collects each partition's
    /// result with its index.
    ///
    /// Each worker builds its engine (and thus its simulation scratch —
    /// value arrays, event buckets) ONCE via `mk` and reuses it across
    /// every partition it claims, so claiming a partition costs no
    /// allocation.
    fn run_partitioned<S, R, F, W>(
        &self,
        parts: &[Vec<usize>],
        threads: usize,
        mk: F,
        work: W,
    ) -> Vec<R>
    where
        R: Send + Default + Clone,
        F: Fn() -> S + Sync,
        W: Fn(&mut S, &[usize]) -> R + Sync,
    {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<R>> = Mutex::new(vec![R::default(); parts.len()]);
        // Workers inherit the spawning thread's stats destination (the
        // handle stack is thread-local); the enter guard also flushes each
        // worker's batched counts once, on exit. They likewise inherit an
        // active span scope, so a scoped job's partition spans land on the
        // job's tracer, not the process-wide one.
        let h = stats::handle();
        let scope_tracer = atspeed_trace::current_scope();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let _g = h.enter();
                    let _ts = scope_tracer.clone().map(atspeed_trace::scope);
                    let mut engine = mk();
                    loop {
                        let p = next.fetch_add(1, Ordering::Relaxed);
                        if p >= parts.len() {
                            break;
                        }
                        let _sp = atspeed_trace::span("fsim.partition");
                        let started = Instant::now();
                        let r = work(&mut engine, &parts[p]);
                        stats::record_partition(started.elapsed());
                        results.lock().unwrap_or_else(|e| e.into_inner())[p] = r;
                    }
                });
            }
        });
        results.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Parallel [`CombFaultSim::detect_block`]: per-fault detection masks
    /// for one block of up to 64 tests, fault-sharded.
    ///
    /// # Panics
    ///
    /// Panics if `tests` is empty or longer than 64 (as the serial engine
    /// does).
    pub fn detect_block(
        &self,
        tests: &[CombTest],
        faults: &[FaultId],
        universe: &FaultUniverse,
    ) -> Vec<u64> {
        let threads = self.cfg.effective_threads(faults.len());
        if threads <= 1 {
            return CombFaultSim::with_engine(self.nl, self.cfg.engine)
                .detect_block(tests, faults, universe);
        }
        assert!(
            !tests.is_empty() && tests.len() <= 64,
            "1..=64 tests per block"
        );
        let parts =
            self.fault_partitions(faults, universe, self.fault_units(faults.len(), threads));
        let masks = self.run_partitioned(
            &parts,
            threads,
            || CombFaultSim::with_engine(self.nl, self.cfg.engine),
            |sim, part| {
                stats::add_invocation();
                let ids: Vec<FaultId> = part.iter().map(|&k| faults[k]).collect();
                sim.detect_block(tests, &ids, universe)
            },
        );
        let mut out = vec![0u64; faults.len()];
        for (part, ms) in parts.iter().zip(masks) {
            for (&k, m) in part.iter().zip(ms) {
                out[k] = m;
            }
        }
        out
    }

    /// Parallel [`CombFaultSim::detect_all`]: which faults some test
    /// detects, test-sharded with cross-partition fault dropping through a
    /// shared atomic bitmap.
    pub fn detect_all(
        &self,
        tests: &[CombTest],
        faults: &[FaultId],
        universe: &FaultUniverse,
    ) -> Vec<bool> {
        let blocks: Vec<&[CombTest]> = tests.chunks(64).collect();
        let threads = self.cfg.effective_threads(blocks.len());
        if threads <= 1 {
            return CombFaultSim::with_engine(self.nl, self.cfg.engine)
                .detect_all(tests, faults, universe);
        }
        let chunk = if self.cfg.chunk_size > 0 {
            self.cfg.chunk_size
        } else {
            1
        };
        let shared = SharedDetectMap::new(faults.len());
        let next = AtomicUsize::new(0);
        let h = stats::handle();
        let scope_tracer = atspeed_trace::current_scope();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let _g = h.enter();
                    let _ts = scope_tracer.clone().map(atspeed_trace::scope);
                    let mut sim = CombFaultSim::with_engine(self.nl, self.cfg.engine);
                    let mut alive_idx: Vec<usize> = Vec::with_capacity(faults.len());
                    let mut alive_ids: Vec<FaultId> = Vec::with_capacity(faults.len());
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= blocks.len() {
                            break;
                        }
                        let _sp = atspeed_trace::span("fsim.detect_all.claim");
                        let started = Instant::now();
                        stats::add_invocation();
                        for block in &blocks[start..blocks.len().min(start + chunk)] {
                            alive_idx.clear();
                            alive_ids.clear();
                            for (k, &fid) in faults.iter().enumerate() {
                                if !shared.is_set(k) {
                                    alive_idx.push(k);
                                    alive_ids.push(fid);
                                }
                            }
                            if alive_ids.is_empty() {
                                break;
                            }
                            let masks = sim.detect_block(block, &alive_ids, universe);
                            for (&k, mask) in alive_idx.iter().zip(masks) {
                                if mask != 0 && shared.set(k) {
                                    stats::add_dropped(1);
                                }
                            }
                        }
                        stats::record_partition(started.elapsed());
                    }
                });
            }
        });
        shared.snapshot(faults.len())
    }

    /// Parallel [`CombFaultSim::detect_matrix`]: the full per-fault,
    /// per-test detection matrix (no dropping), fault-sharded.
    pub fn detect_matrix(
        &self,
        tests: &[CombTest],
        faults: &[FaultId],
        universe: &FaultUniverse,
    ) -> Vec<Vec<u64>> {
        let threads = self.cfg.effective_threads(faults.len());
        if threads <= 1 {
            return CombFaultSim::with_engine(self.nl, self.cfg.engine)
                .detect_matrix(tests, faults, universe);
        }
        let words = tests.len().div_ceil(64);
        let parts =
            self.fault_partitions(faults, universe, self.fault_units(faults.len(), threads));
        let rows = self.run_partitioned(
            &parts,
            threads,
            || CombFaultSim::with_engine(self.nl, self.cfg.engine),
            |sim, part| {
                stats::add_invocation();
                let ids: Vec<FaultId> = part.iter().map(|&k| faults[k]).collect();
                sim.detect_matrix(tests, &ids, universe)
            },
        );
        let mut out = vec![vec![0u64; words]; faults.len()];
        for (part, rs) in parts.iter().zip(rows) {
            for (&k, row) in part.iter().zip(rs) {
                out[k] = row;
            }
        }
        out
    }

    /// Cross-checks the two combinational detection views against each
    /// other: the full no-dropping [`ParallelFsim::detect_matrix`]
    /// (fault-sharded) row-unioned per fault must equal the
    /// [`ParallelFsim::detect_all`] bitmap (test-sharded with dropping),
    /// and no matrix row may set bits beyond the test count.
    ///
    /// The two paths shard along different axes and only one of them drops
    /// faults, so agreement here is a real differential check, not a
    /// tautology. Used by the `atspeed-verify` fuzzer.
    ///
    /// # Errors
    ///
    /// Returns the first [`MatrixMismatch`] found.
    pub fn check_matrix_consistency(
        &self,
        tests: &[CombTest],
        faults: &[FaultId],
        universe: &FaultUniverse,
    ) -> Result<(), MatrixMismatch> {
        let matrix = self.detect_matrix(tests, faults, universe);
        let bitmap = self.detect_all(tests, faults, universe);
        let full_words = tests.len() / 64;
        let tail_mask = match tests.len() % 64 {
            0 => 0u64,
            r => !0u64 << r,
        };
        for (fault_index, (row, &bitmap_detected)) in matrix.iter().zip(bitmap.iter()).enumerate() {
            for (w, &word) in row.iter().enumerate() {
                let stray = if w < full_words { 0 } else { word & tail_mask };
                if stray != 0 {
                    return Err(MatrixMismatch::PaddingBitsSet { fault_index });
                }
            }
            let matrix_detected = row.iter().any(|&w| w != 0);
            if matrix_detected != bitmap_detected {
                return Err(MatrixMismatch::UnionDisagrees {
                    fault_index,
                    matrix_detected,
                    bitmap_detected,
                });
            }
        }
        Ok(())
    }

    /// Parallel [`SeqFaultSim::detect`], fault-sharded.
    pub fn detect(
        &self,
        init: &State,
        seq: &Sequence,
        faults: &[FaultId],
        universe: &FaultUniverse,
        observe_final_state: bool,
    ) -> Vec<bool> {
        let observe = if observe_final_state {
            FinalObserve::FullState
        } else {
            FinalObserve::None
        };
        self.detect_observed(init, seq, faults, universe, observe)
    }

    /// Parallel [`SeqFaultSim::detect_observed`], fault-sharded.
    pub fn detect_observed(
        &self,
        init: &State,
        seq: &Sequence,
        faults: &[FaultId],
        universe: &FaultUniverse,
        observe: FinalObserve<'_>,
    ) -> Vec<bool> {
        let threads = self.cfg.effective_threads(faults.len());
        if threads <= 1 {
            return SeqFaultSim::with_engine(self.nl, self.cfg.engine)
                .detect_observed(init, seq, faults, universe, observe);
        }
        let parts =
            self.fault_partitions(faults, universe, self.fault_units(faults.len(), threads));
        let dets = self.run_partitioned(
            &parts,
            threads,
            || SeqFaultSim::with_engine(self.nl, self.cfg.engine),
            |sim, part| {
                let ids: Vec<FaultId> = part.iter().map(|&k| faults[k]).collect();
                sim.detect_observed(init, seq, &ids, universe, observe)
            },
        );
        let mut out = vec![false; faults.len()];
        for (part, ds) in parts.iter().zip(dets) {
            for (&k, d) in part.iter().zip(ds) {
                out[k] = d;
            }
        }
        out
    }

    /// Parallel [`SeqFaultSim::profiles`], fault-sharded.
    pub fn profiles(
        &self,
        init: &State,
        seq: &Sequence,
        faults: &[FaultId],
        universe: &FaultUniverse,
    ) -> Vec<DetectionProfile> {
        self.profiles_bounded(init, seq, faults, universe, usize::MAX)
            .0
    }

    /// Parallel [`SeqFaultSim::profiles_bounded`], fault-sharded.
    ///
    /// The word budget applies per fault by absolute cycle index, so the
    /// truncated-bit total is the sum over faults regardless of how they
    /// were partitioned — identical to the serial engine's count.
    pub fn profiles_bounded(
        &self,
        init: &State,
        seq: &Sequence,
        faults: &[FaultId],
        universe: &FaultUniverse,
        max_state_words: usize,
    ) -> (Vec<DetectionProfile>, u64) {
        let threads = self.cfg.effective_threads(faults.len());
        if threads <= 1 {
            return SeqFaultSim::with_engine(self.nl, self.cfg.engine).profiles_bounded(
                init,
                seq,
                faults,
                universe,
                max_state_words,
            );
        }
        let parts =
            self.fault_partitions(faults, universe, self.fault_units(faults.len(), threads));
        let results = self.run_partitioned(
            &parts,
            threads,
            || SeqFaultSim::with_engine(self.nl, self.cfg.engine),
            |sim, part| {
                let ids: Vec<FaultId> = part.iter().map(|&k| faults[k]).collect();
                sim.profiles_bounded(init, seq, &ids, universe, max_state_words)
            },
        );
        let mut out = vec![DetectionProfile::default(); faults.len()];
        let mut truncated = 0u64;
        for (part, (ps, t)) in parts.iter().zip(results) {
            truncated += t;
            for (&k, p) in part.iter().zip(ps) {
                out[k] = p;
            }
        }
        (out, truncated)
    }

    /// Union detection over many scan tests — each run `(scan-in state,
    /// sequence)` is simulated with scan-out observation and the detected
    /// sets are unioned. Runs are claimed from a work queue; faults
    /// already detected by *any* partition are dropped everywhere through
    /// the shared atomic bitmap.
    ///
    /// Serial equivalent: iterating the runs in order and dropping
    /// detected faults from the alive list (what `TestSet::detects` in
    /// `atspeed-core` historically did). The union is order-independent,
    /// so both report the same detected set.
    pub fn detect_union(
        &self,
        runs: &[(&State, &Sequence)],
        faults: &[FaultId],
        universe: &FaultUniverse,
        observe_final_state: bool,
    ) -> Vec<bool> {
        let threads = self.cfg.effective_threads(runs.len());
        if threads <= 1 {
            let mut sim = SeqFaultSim::with_engine(self.nl, self.cfg.engine);
            let mut detected = vec![false; faults.len()];
            let mut alive: Vec<usize> = (0..faults.len()).collect();
            for (init, seq) in runs {
                if alive.is_empty() {
                    break;
                }
                let ids: Vec<FaultId> = alive.iter().map(|&k| faults[k]).collect();
                let det = sim.detect(init, seq, &ids, universe, observe_final_state);
                let mut still_alive = Vec::with_capacity(alive.len());
                let mut dropped = 0u64;
                for (&k, d) in alive.iter().zip(det) {
                    if d {
                        detected[k] = true;
                        dropped += 1;
                    } else {
                        still_alive.push(k);
                    }
                }
                alive = still_alive;
                stats::add_dropped(dropped);
            }
            return detected;
        }
        let chunk = if self.cfg.chunk_size > 0 {
            self.cfg.chunk_size
        } else {
            1
        };
        let shared = SharedDetectMap::new(faults.len());
        let next = AtomicUsize::new(0);
        let h = stats::handle();
        let scope_tracer = atspeed_trace::current_scope();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let _g = h.enter();
                    let _ts = scope_tracer.clone().map(atspeed_trace::scope);
                    let mut sim = SeqFaultSim::with_engine(self.nl, self.cfg.engine);
                    let mut alive_idx: Vec<usize> = Vec::with_capacity(faults.len());
                    let mut alive_ids: Vec<FaultId> = Vec::with_capacity(faults.len());
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= runs.len() {
                            break;
                        }
                        let _sp = atspeed_trace::span("fsim.detect_union.claim");
                        let started = Instant::now();
                        for (init, seq) in &runs[start..runs.len().min(start + chunk)] {
                            alive_idx.clear();
                            alive_ids.clear();
                            for (k, &fid) in faults.iter().enumerate() {
                                if !shared.is_set(k) {
                                    alive_idx.push(k);
                                    alive_ids.push(fid);
                                }
                            }
                            if alive_ids.is_empty() {
                                break;
                            }
                            let det =
                                sim.detect(init, seq, &alive_ids, universe, observe_final_state);
                            for (&k, d) in alive_idx.iter().zip(det) {
                                if d && shared.set(k) {
                                    stats::add_dropped(1);
                                }
                            }
                        }
                        stats::record_partition(started.elapsed());
                    }
                });
            }
        });
        shared.snapshot(faults.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::V3;
    use atspeed_circuit::bench_fmt::s27;

    fn comb_tests(nl: &Netlist, n: usize, seed: u64) -> Vec<CombTest> {
        // Cheap deterministic vectors: enumerate bit patterns of the seed.
        (0..n)
            .map(|i| {
                let bits = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left(i as u32);
                let state: Vec<V3> = (0..nl.num_ffs())
                    .map(|b| V3::from_bool(bits >> b & 1 == 1))
                    .collect();
                let inputs: Vec<V3> = (0..nl.num_pis())
                    .map(|b| V3::from_bool(bits >> (b + 17) & 1 == 1))
                    .collect();
                CombTest::new(state, inputs)
            })
            .collect()
    }

    #[test]
    fn effective_threads_caps_by_work() {
        let cfg = SimConfig::with_threads(8);
        assert_eq!(cfg.effective_threads(3), 3);
        assert_eq!(cfg.effective_threads(100), 8);
        assert_eq!(cfg.effective_threads(0), 1);
        assert_eq!(SimConfig::default().effective_threads(100), 1);
        assert!(SimConfig::with_threads(0).effective_threads(100) >= 1);
    }

    #[test]
    fn env_parsing_rejects_garbage_and_accepts_valid_values() {
        // Serialize env mutation: other tests may read SIM_* concurrently,
        // so every env-touching assertion lives in this one test.
        let set = |k: &str, v: Option<&str>| match v {
            Some(v) => std::env::set_var(k, v),
            None => std::env::remove_var(k),
        };
        let saved_t = std::env::var("SIM_THREADS").ok();
        let saved_e = std::env::var("SIM_ENGINE").ok();

        set("SIM_THREADS", Some("4"));
        set("SIM_ENGINE", Some("wide+fused"));
        let cfg = SimConfig::try_from_env().expect("valid values parse");
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.engine, EngineKind::WideFused);
        assert_eq!(SimConfig::from_env(), cfg);

        // The historical bug: `widefused` silently fell back to scalar.
        set("SIM_ENGINE", Some("widefused"));
        let err = SimConfig::try_from_env().expect_err("typo engines are rejected");
        assert!(err.contains("widefused"), "{err}");
        // The lenient wrapper keeps the *valid* thread count.
        let lenient = SimConfig::from_env();
        assert_eq!(lenient.threads, 4);
        assert_eq!(lenient.engine, EngineKind::Scalar);

        set("SIM_THREADS", Some("many"));
        set("SIM_ENGINE", Some("wide"));
        let err = SimConfig::try_from_env().expect_err("bad thread counts are rejected");
        assert!(err.contains("SIM_THREADS"), "{err}");
        let lenient = SimConfig::from_env();
        assert_eq!(lenient.threads, 1);
        assert_eq!(lenient.engine, EngineKind::Wide);

        set("SIM_THREADS", saved_t.as_deref());
        set("SIM_ENGINE", saved_e.as_deref());
    }

    #[test]
    fn shared_map_sets_once() {
        let m = SharedDetectMap::new(130);
        assert!(!m.is_set(129));
        assert!(m.set(129));
        assert!(!m.set(129));
        assert!(m.is_set(129));
        assert_eq!(m.snapshot(130).iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn parallel_matches_serial_on_s27() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let tests = comb_tests(&nl, 150, 2001);

        let mut serial = CombFaultSim::new(&nl);
        let par = ParallelFsim::new(&nl, SimConfig::with_threads(4));

        assert_eq!(
            serial.detect_block(&tests[..64], &faults, &u),
            par.detect_block(&tests[..64], &faults, &u)
        );
        assert_eq!(
            serial.detect_all(&tests, &faults, &u),
            par.detect_all(&tests, &faults, &u)
        );
        assert_eq!(
            serial.detect_matrix(&tests, &faults, &u),
            par.detect_matrix(&tests, &faults, &u)
        );
    }

    #[test]
    fn parallel_seq_matches_serial_on_s27() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let seq = Sequence::from_vectors(
            (0..24)
                .map(|t| {
                    (0..nl.num_pis())
                        .map(|i| V3::from_bool((t * 7 + i * 3) % 5 < 2))
                        .collect()
                })
                .collect(),
        );
        let init = vec![V3::Zero; nl.num_ffs()];

        let mut serial = SeqFaultSim::new(&nl);
        let par = ParallelFsim::new(&nl, SimConfig::with_threads(4));

        assert_eq!(
            serial.detect(&init, &seq, &faults, &u, true),
            par.detect(&init, &seq, &faults, &u, true)
        );
        let sp = serial.profiles(&init, &seq, &faults, &u);
        let pp = par.profiles(&init, &seq, &faults, &u);
        assert_eq!(sp.len(), pp.len());
        for (a, b) in sp.iter().zip(pp.iter()) {
            assert_eq!(a.earliest_detection(), b.earliest_detection());
        }
    }

    #[test]
    fn fault_units_oversubscribes_the_claim_queue() {
        let nl = s27();
        // Default chunking: ~4 claims per worker so the queue can
        // rebalance, capped by the fault count, and serial stays at one.
        let par = ParallelFsim::new(&nl, SimConfig::with_threads(4));
        assert_eq!(par.fault_units(1000, 4), 16);
        assert_eq!(par.fault_units(10, 4), 10);
        assert_eq!(par.fault_units(0, 4), 1);
        assert_eq!(par.fault_units(1000, 1), 1);
        // Explicit chunk_size still controls granularity directly.
        let chunked = ParallelFsim::new(
            &nl,
            SimConfig {
                threads: 4,
                chunk_size: 100,
                ..SimConfig::default()
            },
        );
        assert_eq!(chunked.fault_units(1000, 4), 10);
        assert_eq!(chunked.fault_units(100, 4), 4);
    }

    #[test]
    fn parallel_bounded_profiles_match_serial_including_truncation() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let faults: Vec<FaultId> = u.representatives().to_vec();
        // 70 cycles spills state-diff bits past the first 64-bit word, so
        // a budget of one word must truncate the same bits everywhere.
        let seq = Sequence::from_vectors(
            (0..70)
                .map(|t| {
                    (0..nl.num_pis())
                        .map(|i| V3::from_bool((t * 5 + i * 11) % 7 < 3))
                        .collect()
                })
                .collect(),
        );
        let init = vec![V3::Zero; nl.num_ffs()];
        let (sp, st) = SeqFaultSim::new(&nl).profiles_bounded(&init, &seq, &faults, &u, 1);
        for threads in [2, 4] {
            let par = ParallelFsim::new(&nl, SimConfig::with_threads(threads));
            let (pp, pt) = par.profiles_bounded(&init, &seq, &faults, &u, 1);
            assert_eq!(st, pt, "truncation count diverges at {threads} threads");
            assert_eq!(sp.len(), pp.len());
            assert_eq!(sp, pp, "profiles diverge at {threads} threads");
        }
    }

    #[test]
    fn matrix_consistency_holds_on_s27() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let faults: Vec<FaultId> = u.representatives().to_vec();
        // 70 tests exercises a partial last word (70 % 64 != 0).
        let tests = comb_tests(&nl, 70, 11);
        for threads in [1, 3] {
            ParallelFsim::new(&nl, SimConfig::with_threads(threads))
                .check_matrix_consistency(&tests, &faults, &u)
                .unwrap();
        }
    }

    #[test]
    fn matrix_mismatch_displays_both_views() {
        let e = MatrixMismatch::UnionDisagrees {
            fault_index: 3,
            matrix_detected: true,
            bitmap_detected: false,
        };
        let s = e.to_string();
        assert!(s.contains("fault 3"), "{s}");
        assert!(s.contains("true") && s.contains("false"), "{s}");
        let p = MatrixMismatch::PaddingBitsSet { fault_index: 1 }.to_string();
        assert!(p.contains("beyond the test count"), "{p}");
    }

    #[test]
    fn order_hint_does_not_change_results() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let tests = comb_tests(&nl, 128, 7);
        let mut serial = CombFaultSim::new(&nl);
        let hint: Vec<u32> = (0..faults.len() as u32).rev().collect();
        let par = ParallelFsim::new(&nl, SimConfig::with_threads(3)).with_order_hint(hint);
        assert_eq!(
            serial.detect_all(&tests, &faults, &u),
            par.detect_all(&tests, &faults, &u)
        );
        assert_eq!(
            serial.detect_block(&tests[..64], &faults, &u),
            par.detect_block(&tests[..64], &faults, &u)
        );
    }
}
