//! Cone-fused evaluation: the [`FusedSim`] kernel over a
//! [`FusedCircuit`].
//!
//! Where [`CompiledSim`](crate::kernel::CompiledSim) walks the gate
//! schedule one gate at a time, [`FusedSim`] walks the *unit* schedule of a
//! [`FusedCircuit`]: each unit — a single gate or a fanout-free cone of 3–6
//! gates — runs as a straight-line register micro-program whose interior
//! results live in a tiny local register file and never touch the net
//! value array. Only the unit's root net is stored, which cuts both the
//! store traffic and the event-queue pressure of the delta path (one queue
//! entry drains up to six gates).
//!
//! # Validity contract
//!
//! After a fused pass, only **root nets** (every unit's output, which
//! includes every observed net) and **source nets** hold live values;
//! interior nets are stale. Engines that read arbitrary nets must not
//! consume fused results — see `EngineKind` for which engines degrade.
//!
//! # Overrides
//!
//! Fault injection keeps the exact legacy semantics. Units with no
//! interior override activity take the fast micro-program path (the root
//! stem override, if any, applies at the store); a unit becomes *slow* —
//! evaluated gate by gate with per-pin overrides and per-output stem
//! forcing inside the register file — when any of its gates carries a pin
//! override or any interior output carries a stem override. Slowness is
//! detected per unit on the fly, so the pass needs no marking arrays and
//! stays `&self`.
//!
//! Throughput counters follow the kernel-wide **gate-word** convention: a
//! full fused pass over `G` original gates credits `G × words`, and a
//! delta pass credits the touched units' gate populations, with
//! `evals + skipped == G × words` asserted in debug builds.

use atspeed_circuit::{CompiledCircuit, FusedCircuit, GateKind, NetId};

use crate::comb::Overrides;
use crate::kernel::{
    apply_gate_pin_g, apply_stem_g, combine, debug_check_rails, KernelWord, SimScratch,
};
use crate::logic::{W3x4, W3};

use atspeed_circuit::fuse::MAX_CONE;

/// Extra slots a value slice must carry past the net count for the fused
/// fault-free full pass: the flattened micro-program keeps each unit's
/// interior cone results at `vals[num_nets..num_nets + FUSED_SLICE_PAD]`,
/// so every operand load and result store is one unconditional indexed
/// access — the same loop shape as the compiled kernel. [`SimScratch`]
/// allocates the pad automatically; only callers handing
/// [`FusedSim::eval_slice`] / [`FusedSim::eval_slice_wide`] a raw slice
/// need to size it themselves.
pub const FUSED_SLICE_PAD: usize = MAX_CONE;

const NO_UNIT_Q: u32 = u32::MAX;

/// Reads one micro-program operand: an external net load or a unit-local
/// register (result of an earlier op in the same unit).
#[inline]
fn arg_val<Wd: KernelWord>(vals: &[Wd], regs: &[Wd; MAX_CONE], a: u32) -> Wd {
    match FusedCircuit::decode_arg(a) {
        Ok(net) => vals[net.index()],
        Err(r) => regs[r],
    }
}

/// Folds one gate function over `n` operands with the per-kind dispatch
/// hoisted out of the operand loop (the same shape as `eval_gate_g`, so
/// each fold body is a straight run of rail ops the compiler vectorizes).
#[inline]
fn fold_gate<Wd: KernelWord>(kind: GateKind, n: usize, mut get: impl FnMut(usize) -> Wd) -> Wd {
    let first = get(0);
    let base = match kind {
        GateKind::And | GateKind::Nand => (1..n).fold(first, |acc, i| acc.and(get(i))),
        GateKind::Or | GateKind::Nor => (1..n).fold(first, |acc, i| acc.or(get(i))),
        GateKind::Xor | GateKind::Xnor => (1..n).fold(first, |acc, i| acc.xor(get(i))),
        GateKind::Not | GateKind::Buf => first,
    };
    if kind.inverts() {
        base.not()
    } else {
        base
    }
}

/// Evaluates unit `u`'s micro-program, fault-free (or with only a root
/// stem override, which the caller applies at the store). Returns the root
/// value.
#[inline]
fn eval_unit_fast<Wd: KernelWord>(fc: &FusedCircuit, vals: &[Wd], u: usize) -> Wd {
    let base = fc.op_range(u).start;
    let ops = fc.unit_ops(u);
    if let [op] = ops {
        // Single-gate unit — the common case. Its operands are all
        // external nets, so skip the cone register file entirely (at wide
        // width, just zeroing it would cost more than the gate).
        let args = fc.op_args(base);
        return fold_gate(op.kind, args.len(), |i| {
            match FusedCircuit::decode_arg(args[i]) {
                Ok(net) => vals[net.index()],
                Err(_) => Wd::ALL_X, // unreachable: no earlier op to reference
            }
        });
    }
    let mut regs = [Wd::ALL_X; MAX_CONE];
    let mut last = Wd::ALL_X;
    for (j, op) in ops.iter().enumerate() {
        let args = fc.op_args(base + j);
        let acc = fold_gate(op.kind, args.len(), |i| arg_val(vals, &regs, args[i]));
        regs[j] = acc;
        last = acc;
    }
    last
}

/// Whether unit `u` needs the gate-by-gate override path: any gate with a
/// pin override, or any *interior* output with a stem override (the root's
/// stem override applies at the store and keeps the fast path).
#[inline]
fn unit_is_slow(fc: &FusedCircuit, ov: &Overrides, u: usize) -> bool {
    let ops = fc.unit_ops(u);
    ops.iter().any(|op| ov.is_gate_flagged(op.gate))
        || ops[..ops.len() - 1]
            .iter()
            .any(|op| ov.is_stem_overridden(op.out))
}

/// Evaluates unit `u` gate by gate with full override semantics: per-pin
/// forcing on every operand and stem forcing on every output — interior
/// stem faults propagate through the register file exactly as they would
/// through stored nets. Returns the root value (already stem-forced).
fn eval_unit_slow<Wd: KernelWord>(fc: &FusedCircuit, vals: &[Wd], ov: &Overrides, u: usize) -> Wd {
    let base = fc.op_range(u).start;
    let ops = fc.unit_ops(u);
    let mut regs = [Wd::ALL_X; MAX_CONE];
    let mut last = Wd::ALL_X;
    for (j, op) in ops.iter().enumerate() {
        let args = fc.op_args(base + j);
        let mut acc = apply_gate_pin_g(ov, op.gate, 0, arg_val(vals, &regs, args[0]));
        for (pin, &a) in args.iter().enumerate().skip(1) {
            let w = apply_gate_pin_g(ov, op.gate, pin as u8, arg_val(vals, &regs, a));
            acc = combine(op.kind, acc, w);
        }
        if op.kind.inverts() {
            acc = acc.not();
        }
        acc = apply_stem_g(ov, op.out, acc);
        regs[j] = acc;
        last = acc;
    }
    last
}

/// Full pass over the unit schedule at any width, with fault injection.
/// (The fault-free full pass runs on [`FusedSim`]'s flattened
/// micro-program instead.)
fn fused_full_pass_g<Wd: KernelWord>(
    cc: &CompiledCircuit,
    fc: &FusedCircuit,
    vals: &mut [Wd],
    ov: &Overrides,
) {
    assert!(vals.len() >= cc.num_nets());
    // Gate-word accounting: every original gate advances, cones included.
    crate::stats::add_gate_evals(cc.num_gates() as u64 * Wd::WORDS);
    for &net in ov.stems() {
        if !cc.gate_driven(net) {
            vals[net.index()] = apply_stem_g(ov, net, vals[net.index()]);
        }
    }
    for u in 0..fc.num_units() {
        let rn = fc.root_net(u);
        let out = if unit_is_slow(fc, ov, u) {
            // Root stem override already applied inside.
            eval_unit_slow(fc, vals, ov, u)
        } else {
            apply_stem_g(ov, rn, eval_unit_fast(fc, vals, u))
        };
        vals[rn.index()] = out;
    }
}

/// The unit-level event queue of a [`FusedSim`], split out so the delta
/// core can borrow it alongside either value array.
struct UnitQueue<'a> {
    bucket_head: &'a mut [u32],
    next_in_bucket: &'a mut [u32],
    in_queue: &'a mut [bool],
    queued: &'a mut Vec<u32>,
}

impl UnitQueue<'_> {
    /// Enqueues unit `u` for re-evaluation (once); returns its root level.
    #[inline]
    fn schedule(&mut self, u: u32, fc: &FusedCircuit) -> u32 {
        let level = fc.unit_level(u as usize);
        if !self.in_queue[u as usize] {
            self.in_queue[u as usize] = true;
            self.queued.push(u);
            self.next_in_bucket[u as usize] = self.bucket_head[level as usize];
            self.bucket_head[level as usize] = u;
        }
        level
    }
}

/// Event-driven incremental pass over units at any width. Touched units
/// re-run their whole micro-program from stored externals (interiors are
/// never stored, so there is no partial-cone state to patch).
#[allow(clippy::too_many_arguments)]
fn fused_delta_pass_g<Wd: KernelWord>(
    cc: &CompiledCircuit,
    fc: &FusedCircuit,
    vals: &mut [Wd],
    changed: &mut Vec<NetId>,
    dirty: &mut [bool],
    mut q: UnitQueue<'_>,
    ov: Option<&Overrides>,
) {
    debug_assert!(q.queued.is_empty());
    if let Some(ov) = ov {
        for &net in changed.iter() {
            if !cc.gate_driven(net) {
                vals[net.index()] = apply_stem_g(ov, net, vals[net.index()]);
            }
        }
    }
    let mut min_level = u32::MAX;
    for &net in changed.iter() {
        dirty[net.index()] = false;
        for &u in fc.fanout_units(net) {
            min_level = min_level.min(q.schedule(u, fc));
        }
    }
    changed.clear();

    if min_level != u32::MAX {
        let mut level = min_level as usize;
        while level < q.bucket_head.len() {
            while q.bucket_head[level] != NO_UNIT_Q {
                let u = q.bucket_head[level];
                q.bucket_head[level] = q.next_in_bucket[u as usize];
                let rn = fc.root_net(u as usize);
                let out = match ov {
                    Some(ov) if unit_is_slow(fc, ov, u as usize) => {
                        eval_unit_slow(fc, vals, ov, u as usize)
                    }
                    Some(ov) => apply_stem_g(ov, rn, eval_unit_fast(fc, vals, u as usize)),
                    None => eval_unit_fast(fc, vals, u as usize),
                };
                if out != vals[rn.index()] {
                    vals[rn.index()] = out;
                    for &u2 in fc.fanout_units(rn) {
                        q.schedule(u2, fc);
                    }
                }
            }
            level += 1;
        }
    }

    // Gate-word accounting in original-gate units: touched units account
    // for their whole cone, and touched + skipped partitions the gate set.
    let touched_gates: u64 = q
        .queued
        .iter()
        .map(|&u| fc.unit_gates(u as usize) as u64)
        .sum();
    let evals = touched_gates * Wd::WORDS;
    let skipped = (cc.num_gates() as u64 - touched_gates) * Wd::WORDS;
    debug_assert_eq!(
        evals + skipped,
        cc.num_gates() as u64 * Wd::WORDS,
        "fused delta accounting must partition the gate-word population"
    );
    crate::stats::add_gate_evals(evals);
    crate::stats::add_events_skipped(skipped);
    for u in q.queued.drain(..) {
        q.in_queue[u as usize] = false;
    }
}

/// Cone-fused levelized/event-driven evaluator (see the module docs for
/// the validity contract: only root and source nets are live after a
/// pass).
///
/// Shares [`SimScratch`] with [`CompiledSim`](crate::kernel::CompiledSim)
/// for values and change tracking, but owns its own unit-level event
/// queue, so the two simulators can be mixed on one scratch as long as
/// each delta pass follows a full pass (or delta pass) of the *same*
/// engine and width.
#[derive(Debug, Clone)]
pub struct FusedSim<'a> {
    cc: &'a CompiledCircuit,
    fc: &'a FusedCircuit,
    // Unit-level event queue, same intrusive-list shape as the scratch's
    // gate-level queue (see `SimScratch`).
    bucket_head: Vec<u32>,
    next_in_bucket: Vec<u32>,
    in_queue: Vec<bool>,
    queued: Vec<u32>,
    // The unit schedule flattened into one linear micro-program, so the
    // fault-free full pass walks a single op array with direct store
    // targets instead of three CSR hops per unit (`op_range` → `unit_ops`
    // → `op_args`), which costs as much as a small gate at wide width.
    flat_ops: Vec<FlatOp>,
    flat_args: Vec<u32>,
}

/// One op of the flattened fault-free full-pass micro-program. Operands
/// and the store target are plain indices into the padded value slice:
/// interior cone slot `r` lives at `num_nets + r` (see
/// [`FUSED_SLICE_PAD`]), so the evaluation loop is branch-free.
#[derive(Debug, Clone, Copy)]
struct FlatOp {
    kind: GateKind,
    /// Padded-slice index to store: the unit's root net, or
    /// `num_nets + slot` for an interior cone result.
    store: u32,
    /// Operand range in `FusedSim::flat_args` (padded-slice indices).
    arg_start: u32,
    arg_end: u32,
}

impl<'a> FusedSim<'a> {
    /// Creates an evaluator over `cc`'s fused view `fc`.
    ///
    /// # Panics
    ///
    /// Panics if `fc` was not built from a circuit of `cc`'s shape.
    pub fn new(cc: &'a CompiledCircuit, fc: &'a FusedCircuit) -> Self {
        assert_eq!(fc.num_gates(), cc.num_gates(), "fused view gate count");
        assert_eq!(fc.num_nets(), cc.num_nets(), "fused view net count");
        let nn = cc.num_nets();
        let mut flat_ops = Vec::with_capacity(cc.num_gates());
        let mut flat_args = Vec::new();
        for u in 0..fc.num_units() {
            let base = fc.op_range(u).start;
            let ops = fc.unit_ops(u);
            for (j, op) in ops.iter().enumerate() {
                let arg_start = flat_args.len() as u32;
                flat_args.extend(fc.op_args(base + j).iter().map(
                    |&a| match FusedCircuit::decode_arg(a) {
                        Ok(net) => net.index() as u32,
                        Err(r) => (nn + r) as u32,
                    },
                ));
                let store = if j + 1 == ops.len() {
                    fc.root_net(u).index() as u32
                } else {
                    (nn + j) as u32
                };
                flat_ops.push(FlatOp {
                    kind: op.kind,
                    store,
                    arg_start,
                    arg_end: flat_args.len() as u32,
                });
            }
        }
        FusedSim {
            cc,
            fc,
            bucket_head: vec![NO_UNIT_Q; fc.max_unit_level() as usize + 1],
            next_in_bucket: vec![NO_UNIT_Q; fc.num_units()],
            in_queue: vec![false; fc.num_units()],
            queued: Vec::new(),
            flat_ops,
            flat_args,
        }
    }

    /// Fault-free full pass over the flattened micro-program. Interior
    /// cone results live in the slice pad (never re-initialized between
    /// units): every pad slot is written before any same-unit read
    /// (`FusedCircuit::validate` checks operands only reference earlier
    /// ops), and cross-unit reads cannot occur because interior operands
    /// are unit-local by construction.
    fn full_flat<Wd: KernelWord>(&self, vals: &mut [Wd]) {
        assert!(
            vals.len() >= self.cc.num_nets() + FUSED_SLICE_PAD,
            "fused full pass needs num_nets + FUSED_SLICE_PAD value slots \
             ({} + {}), got {}",
            self.cc.num_nets(),
            FUSED_SLICE_PAD,
            vals.len()
        );
        crate::stats::add_gate_evals(self.cc.num_gates() as u64 * Wd::WORDS);
        for op in &self.flat_ops {
            let args = &self.flat_args[op.arg_start as usize..op.arg_end as usize];
            let first = vals[args[0] as usize];
            let base = match op.kind {
                GateKind::And | GateKind::Nand => args[1..]
                    .iter()
                    .fold(first, |acc, &a| acc.and(vals[a as usize])),
                GateKind::Or | GateKind::Nor => args[1..]
                    .iter()
                    .fold(first, |acc, &a| acc.or(vals[a as usize])),
                GateKind::Xor | GateKind::Xnor => args[1..]
                    .iter()
                    .fold(first, |acc, &a| acc.xor(vals[a as usize])),
                GateKind::Not | GateKind::Buf => first,
            };
            vals[op.store as usize] = if op.kind.inverts() { base.not() } else { base };
        }
    }

    /// The compiled circuit being evaluated.
    #[inline]
    pub fn circuit(&self) -> &'a CompiledCircuit {
        self.cc
    }

    /// The fused view being walked.
    #[inline]
    pub fn fused(&self) -> &'a FusedCircuit {
        self.fc
    }

    /// Full fused pass, fault-free. Stores root nets only (see the module
    /// docs).
    pub fn eval(&self, s: &mut SimScratch) {
        s.clear_events();
        self.eval_slice(&mut s.vals);
    }

    /// Full fused pass with fault injection.
    pub fn eval_with(&self, s: &mut SimScratch, ov: &Overrides) {
        s.clear_events();
        self.eval_with_slice(&mut s.vals, ov);
    }

    /// Full fused pass over a caller-owned value slice, which must carry
    /// the interior-result pad: `num_nets + FUSED_SLICE_PAD` slots.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than `num_nets + FUSED_SLICE_PAD`.
    pub fn eval_slice(&self, vals: &mut [W3]) {
        self.full_flat(vals);
    }

    /// Full fused pass with fault injection over a caller-owned slice.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the circuit's net count.
    pub fn eval_with_slice(&self, vals: &mut [W3], ov: &Overrides) {
        fused_full_pass_g(self.cc, self.fc, vals, ov);
    }

    /// Wide full fused pass, fault-free (allocates the scratch's wide
    /// array on first use).
    pub fn eval_wide(&self, s: &mut SimScratch) {
        s.ensure_wide(self.cc);
        s.clear_events();
        self.eval_slice_wide(&mut s.wvals);
    }

    /// Wide full fused pass with fault injection.
    pub fn eval_with_wide(&self, s: &mut SimScratch, ov: &Overrides) {
        s.ensure_wide(self.cc);
        s.clear_events();
        self.eval_with_slice_wide(&mut s.wvals, ov);
    }

    /// Wide full fused pass over a caller-owned block slice, which must
    /// carry the interior-result pad: `num_nets + FUSED_SLICE_PAD` slots.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than `num_nets + FUSED_SLICE_PAD`.
    pub fn eval_slice_wide(&self, vals: &mut [W3x4]) {
        self.full_flat(vals);
        debug_check_rails(&vals[..self.cc.num_nets()]);
    }

    /// Wide full fused pass with fault injection over a caller-owned block
    /// slice.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the circuit's net count.
    pub fn eval_with_slice_wide(&self, vals: &mut [W3x4], ov: &Overrides) {
        fused_full_pass_g(self.cc, self.fc, vals, ov);
        debug_check_rails(&vals[..self.cc.num_nets()]);
    }

    /// Event-driven incremental fused pass, fault-free: re-evaluates only
    /// the units whose external inputs changed (transitively). Same seed
    /// contract as [`CompiledSim::eval_delta`](crate::kernel::CompiledSim::eval_delta),
    /// with the previous pass run by *this* engine.
    pub fn eval_delta(&mut self, s: &mut SimScratch) {
        let SimScratch {
            vals,
            changed,
            dirty,
            ..
        } = s;
        fused_delta_pass_g(
            self.cc,
            self.fc,
            vals,
            changed,
            dirty,
            UnitQueue {
                bucket_head: &mut self.bucket_head,
                next_in_bucket: &mut self.next_in_bucket,
                in_queue: &mut self.in_queue,
                queued: &mut self.queued,
            },
            None,
        );
    }

    /// Event-driven incremental fused pass with fault injection (the
    /// override set must be unchanged since the seeding full pass).
    pub fn eval_delta_with(&mut self, s: &mut SimScratch, ov: &Overrides) {
        let SimScratch {
            vals,
            changed,
            dirty,
            ..
        } = s;
        fused_delta_pass_g(
            self.cc,
            self.fc,
            vals,
            changed,
            dirty,
            UnitQueue {
                bucket_head: &mut self.bucket_head,
                next_in_bucket: &mut self.next_in_bucket,
                in_queue: &mut self.in_queue,
                queued: &mut self.queued,
            },
            Some(ov),
        );
    }

    /// Wide event-driven incremental fused pass, fault-free.
    pub fn eval_delta_wide(&mut self, s: &mut SimScratch) {
        self.delta_wide(s, None);
    }

    /// Wide event-driven incremental fused pass with fault injection.
    pub fn eval_delta_with_wide(&mut self, s: &mut SimScratch, ov: &Overrides) {
        self.delta_wide(s, Some(ov));
    }

    fn delta_wide(&mut self, s: &mut SimScratch, ov: Option<&Overrides>) {
        s.ensure_wide(self.cc);
        let SimScratch {
            wvals,
            changed,
            dirty,
            ..
        } = s;
        fused_delta_pass_g(
            self.cc,
            self.fc,
            wvals,
            changed,
            dirty,
            UnitQueue {
                bucket_head: &mut self.bucket_head,
                next_in_bucket: &mut self.next_in_bucket,
                in_queue: &mut self.in_queue,
                queued: &mut self.queued,
            },
            ov,
        );
        debug_check_rails(&s.wvals[..self.cc.num_nets()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultUniverse;
    use crate::kernel::CompiledSim;
    use crate::logic::{LANES, V3};
    use atspeed_circuit::fuse::{T0, T1, TX};
    use atspeed_circuit::synth::{generate, SynthSpec};
    use atspeed_circuit::{GateId, Netlist};

    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed | 1;
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }

    fn random_w3(r: &mut impl FnMut() -> u64) -> W3 {
        let a = r();
        let b = r();
        W3 {
            zero: a & !b,
            one: !a & b,
        }
    }

    fn random_w3x4(r: &mut impl FnMut() -> u64) -> W3x4 {
        let mut w = W3x4::ALL_X;
        for l in 0..LANES {
            w.set_lane(l, random_w3(r));
        }
        w
    }

    fn circuits() -> Vec<Netlist> {
        vec![
            atspeed_circuit::bench_fmt::s27(),
            atspeed_circuit::catalog::by_name("s298")
                .unwrap()
                .instantiate(),
            generate(&SynthSpec::new("fs", 6, 4, 9, 300, 11)).unwrap(),
            generate(&SynthSpec::new("fsl", 5, 3, 6, 900, 23).with_layers(7)).unwrap(),
        ]
    }

    /// Nets whose values the fused contract guarantees: sources + roots
    /// (which include every observed net).
    fn live_nets(nl: &Netlist, fc: &FusedCircuit) -> Vec<NetId> {
        let cc = nl.compiled();
        let mut live: Vec<NetId> = nl.pis().to_vec();
        live.extend(nl.ffs().iter().map(|ff| ff.q()));
        live.extend((0..fc.num_units()).map(|u| fc.root_net(u)));
        live.retain(|&n| n.index() < cc.num_nets());
        live
    }

    fn seed_pair(
        nl: &Netlist,
        a: &mut SimScratch,
        b: &mut SimScratch,
        r: &mut impl FnMut() -> u64,
    ) {
        for &pi in nl.pis() {
            let w = random_w3(r);
            a.set_source(pi, w);
            b.set_source(pi, w);
        }
        for ff in nl.ffs() {
            let w = random_w3(r);
            a.set_source(ff.q(), w);
            b.set_source(ff.q(), w);
        }
    }

    #[test]
    fn fused_full_pass_matches_compiled_on_live_nets() {
        for nl in circuits() {
            let cc = nl.compiled();
            let fc = nl.fused();
            let sim = CompiledSim::new(cc);
            let fsim = FusedSim::new(cc, fc);
            let u = FaultUniverse::full(&nl);
            let mut ov = Overrides::new(&nl);
            for (k, &fid) in u.representatives().iter().take(50).enumerate() {
                ov.add(u.fault(fid), 1u64 << (k % 63 + 1));
            }
            let live = live_nets(&nl, fc);
            let mut r = rng(0xF00D);
            let mut sf = SimScratch::new(cc);
            let mut sg = SimScratch::new(cc);
            for round in 0..6 {
                seed_pair(&nl, &mut sf, &mut sg, &mut r);
                if round % 2 == 0 {
                    fsim.eval(&mut sf);
                    sim.eval(&mut sg);
                } else {
                    fsim.eval_with(&mut sf, &ov);
                    sim.eval_with(&mut sg, &ov);
                }
                for &net in &live {
                    assert_eq!(
                        sf.value(net),
                        sg.value(net),
                        "{}: round {round} net {}",
                        nl.name(),
                        nl.net_name(net)
                    );
                }
                assert_eq!(sf.check_dual_rail(), None);
            }
        }
    }

    #[test]
    fn fused_wide_pass_matches_scalar_fused_per_lane() {
        let nl = generate(&SynthSpec::new("fw", 5, 3, 6, 700, 41).with_layers(6)).unwrap();
        let cc = nl.compiled();
        let fc = nl.fused();
        let fsim = FusedSim::new(cc, fc);
        let u = FaultUniverse::full(&nl);
        let mut ov = Overrides::new(&nl);
        for (k, &fid) in u.representatives().iter().take(40).enumerate() {
            ov.add(u.fault(fid), 1u64 << (k % 63 + 1));
        }
        let live = live_nets(&nl, fc);
        let mut r = rng(0xBEAD);
        let mut wide = SimScratch::new_wide(cc);
        for round in 0..4 {
            let mut seeds = Vec::new();
            for &pi in nl.pis() {
                let w = random_w3x4(&mut r);
                wide.set_source_wide(pi, w);
                seeds.push((pi, w));
            }
            for ff in nl.ffs() {
                let w = random_w3x4(&mut r);
                wide.set_source_wide(ff.q(), w);
                seeds.push((ff.q(), w));
            }
            if round % 2 == 0 {
                fsim.eval_wide(&mut wide);
            } else {
                fsim.eval_with_wide(&mut wide, &ov);
            }
            for l in 0..LANES {
                let mut scalar = SimScratch::new(cc);
                for &(net, w) in &seeds {
                    scalar.set_source(net, w.lane(l));
                }
                if round % 2 == 0 {
                    fsim.eval(&mut scalar);
                } else {
                    fsim.eval_with(&mut scalar, &ov);
                }
                for &net in &live {
                    assert_eq!(
                        wide.value_wide(net).lane(l),
                        scalar.value(net),
                        "round {round} lane {l} net {}",
                        nl.net_name(net)
                    );
                }
            }
        }
    }

    #[test]
    fn fused_delta_matches_fused_full_pass() {
        let nl = generate(&SynthSpec::new("fd", 6, 4, 9, 500, 87).with_layers(5)).unwrap();
        let cc = nl.compiled();
        let fc = nl.fused();
        let live = live_nets(&nl, fc);
        let u = FaultUniverse::full(&nl);
        for use_ov in [false, true] {
            let mut ov = Overrides::new(&nl);
            if use_ov {
                for (k, &fid) in u.representatives().iter().take(30).enumerate() {
                    ov.add(u.fault(fid), 1u64 << (k % 63 + 1));
                }
            }
            let mut fsim = FusedSim::new(cc, fc);
            let mut fast = SimScratch::new(cc);
            let mut r = rng(0xCAFE);
            for &pi in nl.pis() {
                fast.set_source(pi, random_w3(&mut r));
            }
            for ff in nl.ffs() {
                fast.set_source(ff.q(), random_w3(&mut r));
            }
            if use_ov {
                fsim.eval_with(&mut fast, &ov);
            } else {
                fsim.eval(&mut fast);
            }
            for round in 0..8 {
                for &pi in nl.pis() {
                    if r() & 3 == 0 {
                        fast.set_source(pi, random_w3(&mut r));
                    }
                }
                for ff in nl.ffs() {
                    if r() & 3 == 0 {
                        fast.set_source(ff.q(), random_w3(&mut r));
                    }
                }
                if use_ov {
                    fsim.eval_delta_with(&mut fast, &ov);
                } else {
                    fsim.eval_delta(&mut fast);
                }
                let mut slow = SimScratch::new(cc);
                for &pi in nl.pis() {
                    slow.set_source(pi, fast.value(pi));
                }
                for ff in nl.ffs() {
                    slow.set_source(ff.q(), fast.value(ff.q()));
                }
                if use_ov {
                    fsim.eval_with(&mut slow, &ov);
                } else {
                    fsim.eval(&mut slow);
                }
                for &net in &live {
                    assert_eq!(
                        fast.value(net),
                        slow.value(net),
                        "ov {use_ov} round {round} net {}",
                        nl.net_name(net)
                    );
                }
            }
        }
    }

    #[test]
    fn fused_wide_delta_matches_fused_wide_full_pass() {
        let nl = generate(&SynthSpec::new("fwd", 5, 3, 6, 600, 19).with_layers(6)).unwrap();
        let cc = nl.compiled();
        let fc = nl.fused();
        let live = live_nets(&nl, fc);
        let mut fsim = FusedSim::new(cc, fc);
        let mut fast = SimScratch::new_wide(cc);
        let mut r = rng(0xD1CE);
        for &pi in nl.pis() {
            fast.set_source_wide(pi, random_w3x4(&mut r));
        }
        for ff in nl.ffs() {
            fast.set_source_wide(ff.q(), random_w3x4(&mut r));
        }
        fsim.eval_wide(&mut fast);
        for round in 0..6 {
            for &pi in nl.pis() {
                if r() & 1 == 0 {
                    fast.set_source_wide(pi, random_w3x4(&mut r));
                }
            }
            fsim.eval_delta_wide(&mut fast);
            let mut slow = SimScratch::new_wide(cc);
            for &pi in nl.pis() {
                slow.set_source_wide(pi, fast.value_wide(pi));
            }
            for ff in nl.ffs() {
                slow.set_source_wide(ff.q(), fast.value_wide(ff.q()));
            }
            fsim.eval_wide(&mut slow);
            for &net in &live {
                assert_eq!(
                    fast.value_wide(net),
                    slow.value_wide(net),
                    "round {round} net {}",
                    nl.net_name(net)
                );
            }
        }
    }

    /// The stored ternary LUT is the unit's functional spec: on every
    /// simulated slot, looking up the externally stored input values must
    /// reproduce the root value the micro-program computed.
    #[test]
    fn lut_oracle_agrees_with_simulated_roots() {
        let nl = generate(&SynthSpec::new("flo", 5, 3, 6, 800, 57).with_layers(7)).unwrap();
        let cc = nl.compiled();
        let fc = nl.fused();
        let fsim = FusedSim::new(cc, fc);
        let mut s = SimScratch::new(cc);
        let mut r = rng(0xFACE);
        for &pi in nl.pis() {
            s.set_source(pi, random_w3(&mut r));
        }
        for ff in nl.ffs() {
            s.set_source(ff.q(), random_w3(&mut r));
        }
        fsim.eval(&mut s);
        let enc = |v: V3| match v {
            V3::Zero => T0,
            V3::One => T1,
            V3::X => TX,
        };
        let mut checked = 0;
        for u in 0..fc.num_units() {
            let Some(lut) = fc.lut(u) else { continue };
            checked += 1;
            let ext = fc.ext_inputs(u);
            for slot in 0..64 {
                let idx: usize = ext
                    .iter()
                    .enumerate()
                    .map(|(i, &net)| enc(s.value(net).get(slot)) as usize * 3usize.pow(i as u32))
                    .sum();
                let want = match lut[idx] {
                    T0 => V3::Zero,
                    T1 => V3::One,
                    _ => V3::X,
                };
                assert_eq!(
                    s.value(fc.root_net(u)).get(slot),
                    want,
                    "unit {u} slot {slot}"
                );
            }
        }
        assert!(checked > 0, "no tabulated unit on a layered circuit");
    }

    /// Fused counters follow the gate-word convention: full pass credits
    /// `G × words`; delta partitions `G × words` into touched cones and
    /// skips.
    #[test]
    fn fused_counters_are_gate_word_consistent() {
        let nl = generate(&SynthSpec::new("fcn", 6, 4, 9, 400, 13).with_layers(5)).unwrap();
        let cc = nl.compiled();
        let fc = nl.fused();
        let g = cc.num_gates() as u64;
        let mut fsim = FusedSim::new(cc, fc);
        let mut r = rng(0xB0B);

        let scope = crate::stats::scoped();
        crate::stats::set_phase("fused");
        let mut s = SimScratch::new(cc);
        for &pi in nl.pis() {
            s.set_source(pi, random_w3(&mut r));
        }
        for ff in nl.ffs() {
            s.set_source(ff.q(), random_w3(&mut r));
        }
        fsim.eval(&mut s);
        crate::stats::flush();
        assert_eq!(scope.report().totals().gate_evals, g);

        let scope = crate::stats::scoped();
        crate::stats::set_phase("fused-wide");
        let mut w = SimScratch::new_wide(cc);
        for &pi in nl.pis() {
            w.set_source_wide(pi, random_w3x4(&mut r));
        }
        for ff in nl.ffs() {
            w.set_source_wide(ff.q(), random_w3x4(&mut r));
        }
        fsim.eval_wide(&mut w);
        crate::stats::flush();
        assert_eq!(scope.report().totals().gate_evals, g * LANES as u64);

        let scope = crate::stats::scoped();
        crate::stats::set_phase("fused-delta");
        s.set_source(nl.pis()[0], random_w3(&mut r));
        fsim.eval_delta(&mut s);
        crate::stats::flush();
        let t = scope.report().totals();
        assert_eq!(t.gate_evals + t.events_skipped, g);
        assert!(t.events_skipped > 0, "a one-PI reseed skips most cones");
    }

    /// A unit with an interior stem override must take the slow path and
    /// reproduce the per-gate engine's root value exactly.
    #[test]
    fn interior_stem_faults_propagate_through_cones() {
        use crate::fault::{Fault, FaultSite};
        let nl = generate(&SynthSpec::new("fis", 5, 3, 6, 700, 29).with_layers(6)).unwrap();
        let cc = nl.compiled();
        let fc = nl.fused();
        // Find an interior net of some multi-gate cone.
        let interior = (0..cc.num_gates())
            .map(GateId::from_index)
            .map(|g| cc.output(g))
            .find(|&n| fc.interior_unit(n).is_some())
            .expect("layered circuit fuses at least one cone");
        for stuck in [false, true] {
            let mut ov = Overrides::new(&nl);
            ov.add(
                Fault {
                    site: FaultSite::Stem(interior),
                    stuck,
                },
                !0u64 >> 1,
            );
            let sim = CompiledSim::new(cc);
            let fsim = FusedSim::new(cc, fc);
            let mut sf = SimScratch::new(cc);
            let mut sg = SimScratch::new(cc);
            let mut r = rng(0xAB5E);
            seed_pair(&nl, &mut sf, &mut sg, &mut r);
            fsim.eval_with(&mut sf, &ov);
            sim.eval_with(&mut sg, &ov);
            for &net in &live_nets(&nl, fc) {
                assert_eq!(
                    sf.value(net),
                    sg.value(net),
                    "stuck {stuck} net {}",
                    nl.net_name(net)
                );
            }
        }
    }
}
