//! Parallel-pattern single-fault (PPSFP) combinational fault simulation
//! over the full-scan view.
//!
//! In a full-scan circuit a test with a one-vector primary-input sequence is
//! equivalent to a combinational test: the scan-in state and the primary
//! inputs drive the combinational core, and the primary outputs plus the
//! captured next state (scanned out) are observed. This module simulates up
//! to 64 such tests per pass (one per word slot) and propagates each fault
//! event-driven through its fanout cone, which is orders of magnitude faster
//! than re-evaluating the whole circuit per fault.

use atspeed_circuit::{CompiledCircuit, Driver, GateId, NetId, Netlist};

use crate::comb::CombSim;
use crate::fault::{FaultId, FaultSite, FaultUniverse};
use crate::kernel::CompiledSim;
use crate::logic::{W3x4, LANES, V3, W3};
use crate::parallel::EngineKind;
use crate::vectors::State;

/// A combinational (single-vector, full-scan) test: a scan-in state and one
/// primary-input vector. This is a test `c_j = (c_js, c_jv)` of the paper's
/// combinational test set `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombTest {
    /// Scan-in state (one value per flip-flop).
    pub state: State,
    /// Primary-input vector.
    pub inputs: Vec<V3>,
}

impl CombTest {
    /// Creates a test from a state and input vector.
    pub fn new(state: State, inputs: Vec<V3>) -> Self {
        CombTest { state, inputs }
    }
}

/// PPSFP fault simulator with reusable scratch state.
///
/// Evaluation runs over the netlist's [`CompiledCircuit`] view: the good
/// machine is a full compiled levelized pass, and each fault's propagation
/// walks the compiled CSR fanout spans event-driven through level buckets.
///
/// # Engine selection
///
/// Under [`EngineKind::Wide`] the multi-block entry points
/// ([`CombFaultSim::detect_all`], [`CombFaultSim::detect_matrix`]) batch
/// [`LANES`] blocks of 64 tests into one wide good-machine pass and then
/// propagate faults lane by lane against the extracted per-block values —
/// per-(test, fault) outcomes are bit-identical to the scalar engine.
/// [`EngineKind::WideFused`] degrades to `Wide` here: fault propagation
/// reads arbitrary interior nets of the good machine, which a fused pass
/// leaves stale. [`CombFaultSim::detect_block`] has a single block and no
/// lane dimension to batch, so it always runs the scalar good pass.
#[derive(Debug)]
pub struct CombFaultSim<'a> {
    nl: &'a Netlist,
    cc: &'a CompiledCircuit,
    engine: EngineKind,
    good: Vec<W3>,
    // Wide good machine (LANES blocks at once), empty until first use.
    wgood: Vec<W3x4>,
    fval: Vec<W3>,
    has_fval: Vec<bool>,
    touched: Vec<NetId>,
    buckets: Vec<Vec<GateId>>,
    in_queue: Vec<bool>,
    processed: Vec<GateId>,
}

impl<'a> CombFaultSim<'a> {
    /// Creates a simulator for `nl` on the scalar kernel.
    pub fn new(nl: &'a Netlist) -> Self {
        Self::with_engine(nl, EngineKind::Scalar)
    }

    /// Creates a simulator for `nl` on the given kernel (see the type docs
    /// for how each [`EngineKind`] behaves here).
    pub fn with_engine(nl: &'a Netlist, engine: EngineKind) -> Self {
        let cc = nl.compiled();
        CombFaultSim {
            nl,
            cc,
            engine,
            good: vec![W3::ALL_X; cc.num_nets()],
            wgood: Vec::new(),
            fval: vec![W3::ALL_X; cc.num_nets()],
            has_fval: vec![false; cc.num_nets()],
            touched: Vec::new(),
            buckets: vec![Vec::new(); cc.max_level() as usize + 2],
            in_queue: vec![false; cc.num_gates()],
            processed: Vec::new(),
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// The kernel this simulator runs on.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Simulates one block of up to 64 tests against `faults`.
    ///
    /// Returns, per fault, the mask of test slots that detect it.
    ///
    /// # Panics
    ///
    /// Panics if `tests` is empty or longer than 64, or if test widths do
    /// not match the netlist.
    pub fn detect_block(
        &mut self,
        tests: &[CombTest],
        faults: &[FaultId],
        universe: &FaultUniverse,
    ) -> Vec<u64> {
        assert!(
            !tests.is_empty() && tests.len() <= 64,
            "1..=64 tests per block"
        );
        crate::stats::add_invocation();
        self.seed_and_eval_good(tests);
        faults
            .iter()
            .map(|&fid| self.propagate_one(fid, universe))
            .collect()
    }

    /// Runs the whole test list (in blocks of 64) against `faults` with
    /// fault dropping; returns which faults some test detects.
    pub fn detect_all(
        &mut self,
        tests: &[CombTest],
        faults: &[FaultId],
        universe: &FaultUniverse,
    ) -> Vec<bool> {
        crate::stats::add_invocation();
        let mut detected = vec![false; faults.len()];
        let mut alive: Vec<usize> = (0..faults.len()).collect();
        let mut run_block = |sim: &mut Self, alive: &mut Vec<usize>| {
            let before = alive.len();
            alive.retain(|&k| {
                let mask = sim.propagate_one(faults[k], universe);
                if mask != 0 {
                    detected[k] = true;
                    false
                } else {
                    true
                }
            });
            crate::stats::add_dropped((before - alive.len()) as u64);
        };
        if self.engine == EngineKind::Scalar {
            for block in tests.chunks(64) {
                if alive.is_empty() {
                    break;
                }
                self.seed_and_eval_good(block);
                run_block(self, &mut alive);
            }
        } else {
            // One wide good pass covers LANES blocks; dropping still
            // happens between blocks (lanes), so per-(test, fault)
            // outcomes and drop counts match the scalar engine exactly.
            for superblock in tests.chunks(64 * LANES) {
                if alive.is_empty() {
                    break;
                }
                let blocks: Vec<&[CombTest]> = superblock.chunks(64).collect();
                self.seed_and_eval_good_wide(&blocks);
                for l in 0..blocks.len() {
                    if alive.is_empty() {
                        break;
                    }
                    self.load_good_lane(l);
                    run_block(self, &mut alive);
                }
            }
        }
        detected
    }

    /// Computes the full detection matrix without dropping: for each fault,
    /// one bit per test, packed into `ceil(tests/64)` words. Used by
    /// Phase 3 of the paper to compute `n(f)` and `last(f)`.
    pub fn detect_matrix(
        &mut self,
        tests: &[CombTest],
        faults: &[FaultId],
        universe: &FaultUniverse,
    ) -> Vec<Vec<u64>> {
        crate::stats::add_invocation();
        let words = tests.len().div_ceil(64);
        let mut matrix = vec![vec![0u64; words]; faults.len()];
        if self.engine == EngineKind::Scalar {
            for (b, block) in tests.chunks(64).enumerate() {
                self.seed_and_eval_good(block);
                for (k, &fid) in faults.iter().enumerate() {
                    matrix[k][b] = self.propagate_one(fid, universe);
                }
            }
        } else {
            for (sb, superblock) in tests.chunks(64 * LANES).enumerate() {
                let blocks: Vec<&[CombTest]> = superblock.chunks(64).collect();
                self.seed_and_eval_good_wide(&blocks);
                for l in 0..blocks.len() {
                    self.load_good_lane(l);
                    let b = sb * LANES + l;
                    for (k, &fid) in faults.iter().enumerate() {
                        matrix[k][b] = self.propagate_one(fid, universe);
                    }
                }
            }
        }
        matrix
    }

    fn seed_and_eval_good(&mut self, tests: &[CombTest]) {
        let cc = self.cc;
        for (i, &pi) in cc.pis().iter().enumerate() {
            let mut w = W3::ALL_X;
            for (s, t) in tests.iter().enumerate() {
                debug_assert_eq!(t.inputs.len(), cc.pis().len(), "input width mismatch");
                w.set(s, t.inputs[i]);
            }
            self.good[pi.index()] = w;
        }
        for (f, &q) in cc.ff_qs().iter().enumerate() {
            let mut w = W3::ALL_X;
            for (s, t) in tests.iter().enumerate() {
                debug_assert_eq!(t.state.len(), cc.ff_qs().len(), "state width mismatch");
                w.set(s, t.state[f]);
            }
            self.good[q.index()] = w;
        }
        CompiledSim::new(cc).eval_slice(&mut self.good);
    }

    /// Seeds up to [`LANES`] blocks (one per lane) and runs one wide good
    /// pass. The fused kernel is not used here even under
    /// [`EngineKind::WideFused`]: fault propagation reads arbitrary
    /// interior nets, which a fused pass leaves stale.
    fn seed_and_eval_good_wide(&mut self, blocks: &[&[CombTest]]) {
        let cc = self.cc;
        debug_assert!(!blocks.is_empty() && blocks.len() <= LANES);
        if self.wgood.len() < cc.num_nets() {
            self.wgood.resize(cc.num_nets(), W3x4::ALL_X);
        }
        for (i, &pi) in cc.pis().iter().enumerate() {
            let mut wb = W3x4::ALL_X;
            for (l, block) in blocks.iter().enumerate() {
                let mut w = W3::ALL_X;
                for (s, t) in block.iter().enumerate() {
                    debug_assert_eq!(t.inputs.len(), cc.pis().len(), "input width mismatch");
                    w.set(s, t.inputs[i]);
                }
                wb.set_lane(l, w);
            }
            self.wgood[pi.index()] = wb;
        }
        for (f, &q) in cc.ff_qs().iter().enumerate() {
            let mut wb = W3x4::ALL_X;
            for (l, block) in blocks.iter().enumerate() {
                let mut w = W3::ALL_X;
                for (s, t) in block.iter().enumerate() {
                    debug_assert_eq!(t.state.len(), cc.ff_qs().len(), "state width mismatch");
                    w.set(s, t.state[f]);
                }
                wb.set_lane(l, w);
            }
            self.wgood[q.index()] = wb;
        }
        CompiledSim::new(cc).eval_slice_wide(&mut self.wgood);
    }

    /// Extracts lane `l` of the wide good machine into the scalar good
    /// array that fault propagation reads.
    fn load_good_lane(&mut self, l: usize) {
        for (g, wb) in self.good.iter_mut().zip(self.wgood.iter()) {
            *g = wb.lane(l);
        }
    }

    /// Event-driven single-fault propagation; returns the detect mask.
    fn propagate_one(&mut self, fid: FaultId, universe: &FaultUniverse) -> u64 {
        let fault = universe.fault(fid);
        // Pin faults at observation points never propagate through logic.
        match fault.site {
            FaultSite::FfPin(ff) => {
                let g = self.good[self.cc.ff_d(ff).index()];
                return if fault.stuck { g.zero } else { g.one };
            }
            FaultSite::PoPin(po) => {
                let g = self.good[self.cc.pos()[po.index()].index()];
                return if fault.stuck { g.zero } else { g.one };
            }
            _ => {}
        }

        debug_assert!(self.touched.is_empty() && self.processed.is_empty());
        let mut min_level = u32::MAX;
        match fault.site {
            FaultSite::Stem(net) => {
                let g = self.good[net.index()];
                let fv = g.force(fault.stuck, u64::MAX);
                if fv != g {
                    self.set_fval(net, fv);
                    min_level = self.schedule_sinks(net, min_level);
                }
            }
            FaultSite::GatePin(gate, _) => {
                min_level = self.schedule_gate(gate, min_level);
            }
            FaultSite::FfPin(_) | FaultSite::PoPin(_) => unreachable!(),
        }

        if min_level != u32::MAX {
            let mut level = min_level as usize;
            while level < self.buckets.len() {
                while let Some(gid) = self.buckets[level].pop() {
                    self.eval_faulty_gate(gid, fault);
                }
                level += 1;
            }
        }

        // Collect detections at observed nets, then reset scratch state.
        let mut mask = 0u64;
        for &net in &self.touched {
            let differs = self.good[net.index()].diff_known(self.fval[net.index()]);
            if differs != 0 && self.cc.observed(net) {
                mask |= differs;
            }
        }
        for net in self.touched.drain(..) {
            self.has_fval[net.index()] = false;
        }
        crate::stats::add_gate_evals(self.processed.len() as u64);
        crate::stats::add_events_skipped(self.cc.num_gates() as u64 - self.processed.len() as u64);
        for gid in self.processed.drain(..) {
            self.in_queue[gid.index()] = false;
        }
        mask
    }

    #[inline]
    fn set_fval(&mut self, net: NetId, w: W3) {
        if !self.has_fval[net.index()] {
            self.has_fval[net.index()] = true;
            self.touched.push(net);
        }
        self.fval[net.index()] = w;
    }

    #[inline]
    fn value_of(&self, net: NetId) -> W3 {
        if self.has_fval[net.index()] {
            self.fval[net.index()]
        } else {
            self.good[net.index()]
        }
    }

    fn schedule_sinks(&mut self, net: NetId, mut min_level: u32) -> u32 {
        let cc = self.cc;
        for &gid in cc.fanout_gates(net) {
            min_level = self.schedule_gate(gid, min_level);
        }
        min_level
    }

    fn schedule_gate(&mut self, gid: GateId, min_level: u32) -> u32 {
        let level = self.cc.gate_level(gid);
        if !self.in_queue[gid.index()] {
            self.in_queue[gid.index()] = true;
            self.processed.push(gid);
            self.buckets[level as usize].push(gid);
        }
        min_level.min(level)
    }

    fn eval_faulty_gate(&mut self, gid: GateId, fault: crate::fault::Fault) {
        let cc = self.cc;
        let kind = cc.kind(gid);
        let span = cc.inputs(gid);
        // Fold the gate function over the compiled pin span, applying the
        // single injected pin fault (if it lands here) in the stream.
        let mut acc = W3::ALL_X;
        for (p, &inet) in span.iter().enumerate() {
            let mut w = self.value_of(inet);
            if let FaultSite::GatePin(fg, fp) = fault.site {
                if fg == gid && fp == p as u8 {
                    w = w.force(fault.stuck, u64::MAX);
                }
            }
            acc = if p == 0 {
                w
            } else {
                crate::kernel::combine(kind, acc, w)
            };
        }
        let out = if kind.inverts() { acc.not() } else { acc };
        let onet = cc.output(gid);
        let out = if let FaultSite::Stem(net) = fault.site {
            // A stem fault downstream of itself cannot occur (acyclic), but
            // reconvergence can route through the fault net only if the
            // gate drives it — keep the forced value authoritative.
            if onet == net {
                out.force(fault.stuck, u64::MAX)
            } else {
                out
            }
        } else {
            out
        };
        if out != self.value_of(onet) {
            self.set_fval(onet, out);
            for &g2 in cc.fanout_gates(onet) {
                self.schedule_gate(g2, u32::MAX);
            }
        }
    }

    /// Brute-force reference: full re-evaluation per fault (used by tests
    /// as the differential oracle for the event-driven core).
    pub fn detect_block_bruteforce(
        &mut self,
        tests: &[CombTest],
        faults: &[FaultId],
        universe: &FaultUniverse,
    ) -> Vec<u64> {
        use crate::comb::Overrides;
        assert!(!tests.is_empty() && tests.len() <= 64);
        self.seed_and_eval_good(tests);
        let good = self.good.clone();
        let mut sim = CombSim::new(self.nl);
        let mut ov = Overrides::new(self.nl);
        let mut out = Vec::with_capacity(faults.len());
        let mut vals = vec![W3::ALL_X; self.nl.num_nets()];
        for &fid in faults {
            ov.clear();
            ov.add(universe.fault(fid), u64::MAX);
            // Re-seed sources.
            for net in self.nl.net_ids() {
                if !matches!(self.nl.driver(net), Driver::Gate(_)) {
                    vals[net.index()] = good[net.index()];
                }
            }
            sim.eval_with(&mut vals, &ov);
            let mut mask = 0u64;
            for (k, &po) in self.nl.pos().iter().enumerate() {
                let w = ov.apply_po_pin(atspeed_circuit::PoId::from_index(k), vals[po.index()]);
                mask |= good[po.index()].diff_known(w);
            }
            for (f, ff) in self.nl.ffs().iter().enumerate() {
                let w = ov.apply_ff_pin(atspeed_circuit::FfId::from_index(f), vals[ff.d().index()]);
                mask |= good[ff.d().index()].diff_known(w);
            }
            out.push(mask);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::parse_values;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::synth::{generate, SynthSpec};

    fn s27_tests() -> Vec<CombTest> {
        // Exhaustive over 3 state bits x 4 input bits.
        let mut tests = Vec::new();
        for st in 0..8u32 {
            for pv in 0..16u32 {
                tests.push(CombTest::new(
                    (0..3).map(|b| V3::from_bool(st & (1 << b) != 0)).collect(),
                    (0..4).map(|b| V3::from_bool(pv & (1 << b) != 0)).collect(),
                ));
            }
        }
        tests
    }

    #[test]
    fn event_driven_matches_bruteforce_on_s27() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut sim = CombFaultSim::new(&nl);
        let tests = s27_tests();
        let faults: Vec<FaultId> = u.all_ids().collect();
        for block in tests.chunks(64) {
            let fast = sim.detect_block(block, &faults, &u);
            let slow = sim.detect_block_bruteforce(block, &faults, &u);
            for (k, (&a, &b)) in fast.iter().zip(slow.iter()).enumerate() {
                assert_eq!(
                    a,
                    b,
                    "fault {} differs: event {:#x} brute {:#x}",
                    u.fault(faults[k]).describe(&nl),
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn event_driven_matches_bruteforce_on_synthetic() {
        let nl = generate(&SynthSpec::new("diff", 5, 3, 8, 120, 99)).unwrap();
        let u = FaultUniverse::full(&nl);
        let mut sim = CombFaultSim::new(&nl);
        // Deterministic pseudo-random block of tests.
        let mut x = 0x12345678u64;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let tests: Vec<CombTest> = (0..64)
            .map(|_| {
                CombTest::new(
                    (0..nl.num_ffs())
                        .map(|_| V3::from_bool(rnd() & 1 == 1))
                        .collect(),
                    (0..nl.num_pis())
                        .map(|_| V3::from_bool(rnd() & 1 == 1))
                        .collect(),
                )
            })
            .collect();
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let fast = sim.detect_block(&tests, &faults, &u);
        let slow = sim.detect_block_bruteforce(&tests, &faults, &u);
        let mismatches: Vec<String> = faults
            .iter()
            .enumerate()
            .filter(|(k, _)| fast[*k] != slow[*k])
            .map(|(_k, &f)| u.fault(f).describe(&nl))
            .collect();
        assert!(mismatches.is_empty(), "mismatches: {mismatches:?}");
    }

    #[test]
    fn matrix_matches_blockwise_detection() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut sim = CombFaultSim::new(&nl);
        let tests = s27_tests();
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let matrix = sim.detect_matrix(&tests, &faults, &u);
        let detected = sim.detect_all(&tests, &faults, &u);
        for (k, row) in matrix.iter().enumerate() {
            let any = row.iter().any(|&w| w != 0);
            assert_eq!(any, detected[k]);
        }
    }

    #[test]
    fn x_state_limits_detection() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut sim = CombFaultSim::new(&nl);
        // All-X scan state: many faults become undetectable by one vector.
        let t_x = vec![CombTest::new(parse_values("xxx"), parse_values("1010"))];
        let t_bin = vec![CombTest::new(parse_values("010"), parse_values("1010"))];
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let det_x: usize = sim
            .detect_block(&t_x, &faults, &u)
            .iter()
            .filter(|&&m| m != 0)
            .count();
        let det_bin: usize = sim
            .detect_block(&t_bin, &faults, &u)
            .iter()
            .filter(|&&m| m != 0)
            .count();
        assert!(
            det_x <= det_bin,
            "X state cannot detect more ({det_x} vs {det_bin})"
        );
    }

    #[test]
    fn dropping_stops_simulation_of_detected_faults() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut sim = CombFaultSim::new(&nl);
        let tests = s27_tests();
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let det = sim.detect_all(&tests, &faults, &u);
        // s27 is fully testable: every representative must fall.
        assert!(det.iter().all(|&d| d), "all s27 faults detectable");
    }

    /// Every engine variant must report exactly the scalar engine's
    /// detections and detection matrices, including on partially-filled
    /// wide superblocks and X-heavy tests.
    #[test]
    fn all_engines_match_scalar_detection() {
        let synth = generate(&SynthSpec::new("eng", 5, 3, 8, 160, 7)).unwrap();
        for nl in [s27(), synth] {
            let u = FaultUniverse::full(&nl);
            let faults: Vec<FaultId> = u.representatives().to_vec();
            // 300 tests: one full 256-test wide superblock plus a ragged
            // tail, with a sprinkling of X values.
            let mut x = 0xdead_beefu64;
            let mut rnd = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let v3 = |r: u64| match r % 5 {
                0 => V3::X,
                n => V3::from_bool(n & 1 == 1),
            };
            let tests: Vec<CombTest> = (0..300)
                .map(|_| {
                    CombTest::new(
                        (0..nl.num_ffs()).map(|_| v3(rnd())).collect(),
                        (0..nl.num_pis()).map(|_| v3(rnd())).collect(),
                    )
                })
                .collect();

            let mut scalar = CombFaultSim::new(&nl);
            let det = scalar.detect_all(&tests, &faults, &u);
            let matrix = scalar.detect_matrix(&tests, &faults, &u);
            for engine in EngineKind::ALL {
                let mut sim = CombFaultSim::with_engine(&nl, engine);
                assert_eq!(
                    sim.detect_all(&tests, &faults, &u),
                    det,
                    "{engine} detect_all diverges on {}",
                    nl.name()
                );
                assert_eq!(
                    sim.detect_matrix(&tests, &faults, &u),
                    matrix,
                    "{engine} detect_matrix diverges on {}",
                    nl.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "1..=64 tests per block")]
    fn rejects_oversized_block() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let mut sim = CombFaultSim::new(&nl);
        let t = CombTest::new(parse_values("000"), parse_values("0000"));
        let tests = vec![t; 65];
        let _ = sim.detect_block(&tests, &[], &u);
    }
}
