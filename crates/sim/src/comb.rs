//! Levelized combinational evaluation with fault-injection overrides.

use atspeed_circuit::{Driver, FfId, GateId, NetId, Netlist, PoId};

use crate::fault::{Fault, FaultSite};
use crate::logic::W3;

/// Fault-injection overrides for one simulation pass.
///
/// Holds, per simulation slot, the stuck-at values to force. Stem overrides
/// are applied to a net's value right after it is computed (or seeded, for
/// primary inputs and flip-flop outputs); pin overrides are applied where a
/// specific consumer reads the net — a gate input pin, a flip-flop D input,
/// or a primary-output position — leaving all other consumers fault-free.
///
/// The structure is sized for a netlist once and reused across passes via
/// [`Overrides::clear`], keeping per-pass cost proportional to the number of
/// injected faults rather than the circuit size.
#[derive(Debug, Clone)]
pub struct Overrides {
    stem_force0: Vec<u64>,
    stem_force1: Vec<u64>,
    touched_stems: Vec<NetId>,
    gate_flagged: Vec<bool>,
    gate_pins: Vec<(GateId, u8, bool, u64)>,
    ff_pins: Vec<(FfId, bool, u64)>,
    po_pins: Vec<(PoId, bool, u64)>,
}

impl Overrides {
    /// Creates an empty override set sized for `nl`.
    pub fn new(nl: &Netlist) -> Self {
        Overrides {
            stem_force0: vec![0; nl.num_nets()],
            stem_force1: vec![0; nl.num_nets()],
            touched_stems: Vec::new(),
            gate_flagged: vec![false; nl.num_gates()],
            gate_pins: Vec::new(),
            ff_pins: Vec::new(),
            po_pins: Vec::new(),
        }
    }

    /// Removes all injected faults; cost is proportional to how many faults
    /// were injected, not to the circuit size.
    pub fn clear(&mut self) {
        for net in self.touched_stems.drain(..) {
            self.stem_force0[net.index()] = 0;
            self.stem_force1[net.index()] = 0;
        }
        for (gate, _, _, _) in self.gate_pins.drain(..) {
            self.gate_flagged[gate.index()] = false;
        }
        self.ff_pins.clear();
        self.po_pins.clear();
    }

    /// Injects `fault` into the slots of `mask`.
    ///
    /// Slot 0 is conventionally the good machine in fault simulation; the
    /// caller is responsible for keeping bit 0 out of `mask` there.
    pub fn add(&mut self, fault: Fault, mask: u64) {
        match fault.site {
            FaultSite::Stem(net) => {
                let i = net.index();
                if self.stem_force0[i] == 0 && self.stem_force1[i] == 0 {
                    self.touched_stems.push(net);
                }
                if fault.stuck {
                    self.stem_force1[i] |= mask;
                } else {
                    self.stem_force0[i] |= mask;
                }
            }
            FaultSite::GatePin(gate, pin) => {
                self.gate_flagged[gate.index()] = true;
                self.gate_pins.push((gate, pin, fault.stuck, mask));
            }
            FaultSite::FfPin(ff) => self.ff_pins.push((ff, fault.stuck, mask)),
            FaultSite::PoPin(po) => self.po_pins.push((po, fault.stuck, mask)),
        }
    }

    /// Whether no faults are injected.
    pub fn is_empty(&self) -> bool {
        self.touched_stems.is_empty()
            && self.gate_pins.is_empty()
            && self.ff_pins.is_empty()
            && self.po_pins.is_empty()
    }

    /// Applies the stem override for `net` to `w`.
    #[inline]
    pub fn apply_stem(&self, net: NetId, w: W3) -> W3 {
        let i = net.index();
        let f0 = self.stem_force0[i];
        let f1 = self.stem_force1[i];
        if f0 == 0 && f1 == 0 {
            w
        } else {
            w.force(false, f0).force(true, f1)
        }
    }

    /// Applies pin overrides for input `pin` of `gate` to `w`.
    #[inline]
    pub fn apply_gate_pin(&self, gate: GateId, pin: u8, w: W3) -> W3 {
        if !self.gate_flagged[gate.index()] {
            return w;
        }
        let mut out = w;
        for &(g, p, stuck, mask) in &self.gate_pins {
            if g == gate && p == pin {
                out = out.force(stuck, mask);
            }
        }
        out
    }

    /// Applies pin overrides for the D input of `ff` to `w`.
    #[inline]
    pub fn apply_ff_pin(&self, ff: FfId, w: W3) -> W3 {
        let mut out = w;
        for &(f, stuck, mask) in &self.ff_pins {
            if f == ff {
                out = out.force(stuck, mask);
            }
        }
        out
    }

    /// Applies pin overrides for primary output `po` to `w`.
    #[inline]
    pub fn apply_po_pin(&self, po: PoId, w: W3) -> W3 {
        let mut out = w;
        for &(p, stuck, mask) in &self.po_pins {
            if p == po {
                out = out.force(stuck, mask);
            }
        }
        out
    }

    /// The nets with an active stem override, for the kernel's seed pass.
    #[inline]
    pub(crate) fn stems(&self) -> &[NetId] {
        &self.touched_stems
    }

    /// Whether `gate` has at least one input-pin override.
    #[inline]
    pub(crate) fn is_gate_flagged(&self, gate: GateId) -> bool {
        self.gate_flagged[gate.index()]
    }

    /// The raw stem force masks for `net` (`(force-to-0, force-to-1)`), so
    /// width-generic kernels can apply the same slot masks to every lane.
    #[inline]
    pub(crate) fn stem_masks(&self, net: NetId) -> (u64, u64) {
        let i = net.index();
        (self.stem_force0[i], self.stem_force1[i])
    }

    /// Whether `net` carries a stem override.
    #[inline]
    pub(crate) fn is_stem_overridden(&self, net: NetId) -> bool {
        let i = net.index();
        self.stem_force0[i] != 0 || self.stem_force1[i] != 0
    }

    /// The raw gate-pin override list (`(gate, pin, stuck, mask)`).
    #[inline]
    pub(crate) fn gate_pin_list(&self) -> &[(GateId, u8, bool, u64)] {
        &self.gate_pins
    }
}

/// Evaluates the combinational core of a netlist over packed values.
///
/// The value array is indexed by [`NetId`]; the caller seeds the source nets
/// (primary inputs and flip-flop outputs) and [`CombSim::eval`] fills in
/// every gate output in levelized order.
///
/// This is the *legacy walker*: it follows the pointer-based
/// [`Netlist::gate`] accessors gate by gate and serves as the reference
/// implementation for differential tests. Hot paths should use the compiled
/// kernel ([`CompiledSim`](crate::kernel::CompiledSim)) instead, which
/// evaluates the flat [`CompiledCircuit`](atspeed_circuit::CompiledCircuit)
/// arrays.
#[derive(Debug, Clone)]
pub struct CombSim<'a> {
    nl: &'a Netlist,
    // Per-gate input staging buffer, hoisted out of the eval loop so the
    // reference walker does not churn the allocator once warm.
    ins: Vec<W3>,
}

impl<'a> CombSim<'a> {
    /// Creates an evaluator for `nl`.
    pub fn new(nl: &'a Netlist) -> Self {
        CombSim {
            nl,
            ins: Vec::with_capacity(8),
        }
    }

    /// The netlist being evaluated.
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// Evaluates all gates fault-free.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the netlist's net count.
    pub fn eval(&mut self, vals: &mut [W3]) {
        assert!(vals.len() >= self.nl.num_nets());
        crate::stats::add_gate_evals(self.nl.num_gates() as u64);
        for &gid in self.nl.topo_order() {
            let g = self.nl.gate(gid);
            self.ins.clear();
            self.ins.extend(g.inputs().iter().map(|&n| vals[n.index()]));
            vals[g.output().index()] = W3::eval_gate(g.kind(), &self.ins);
        }
    }

    /// Evaluates all gates with fault injection.
    ///
    /// Stem overrides on source nets (primary inputs, flip-flop outputs) are
    /// applied to the seeded values first, then each gate is evaluated with
    /// its pin overrides and its output stem override.
    ///
    /// # Panics
    ///
    /// Panics if `vals` is shorter than the netlist's net count.
    pub fn eval_with(&mut self, vals: &mut [W3], ov: &Overrides) {
        assert!(vals.len() >= self.nl.num_nets());
        crate::stats::add_gate_evals(self.nl.num_gates() as u64);
        for &net in &ov.touched_stems {
            if !matches!(self.nl.driver(net), Driver::Gate(_)) {
                vals[net.index()] = ov.apply_stem(net, vals[net.index()]);
            }
        }
        for &gid in self.nl.topo_order() {
            let g = self.nl.gate(gid);
            self.ins.clear();
            if ov.gate_flagged[gid.index()] {
                for (pin, &n) in g.inputs().iter().enumerate() {
                    self.ins
                        .push(ov.apply_gate_pin(gid, pin as u8, vals[n.index()]));
                }
            } else {
                self.ins.extend(g.inputs().iter().map(|&n| vals[n.index()]));
            }
            let out = W3::eval_gate(g.kind(), &self.ins);
            vals[g.output().index()] = ov.apply_stem(g.output(), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::V3;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::{GateKind, NetlistBuilder};

    fn mux() -> atspeed_circuit::Netlist {
        // y = (a AND s') OR (b AND s)
        let mut b = NetlistBuilder::new("mux");
        b.input("a");
        b.input("b");
        b.input("s");
        b.gate(GateKind::Not, "sn", &["s"]);
        b.gate(GateKind::And, "t0", &["a", "sn"]);
        b.gate(GateKind::And, "t1", &["b", "s"]);
        b.gate(GateKind::Or, "y", &["t0", "t1"]);
        b.output("y");
        b.finish().unwrap()
    }

    fn eval_mux(a: V3, b: V3, s: V3) -> V3 {
        let nl = mux();
        let mut sim = CombSim::new(&nl);
        let mut vals = vec![W3::ALL_X; nl.num_nets()];
        vals[nl.find_net("a").unwrap().index()] = W3::broadcast(a);
        vals[nl.find_net("b").unwrap().index()] = W3::broadcast(b);
        vals[nl.find_net("s").unwrap().index()] = W3::broadcast(s);
        sim.eval(&mut vals);
        vals[nl.find_net("y").unwrap().index()].get(0)
    }

    #[test]
    fn mux_truth_table() {
        assert_eq!(eval_mux(V3::One, V3::Zero, V3::Zero), V3::One);
        assert_eq!(eval_mux(V3::One, V3::Zero, V3::One), V3::Zero);
        assert_eq!(eval_mux(V3::Zero, V3::One, V3::One), V3::One);
        // Unknown select with equal data inputs is conservatively X in
        // 3-valued simulation (the classic mux pessimism).
        assert_eq!(eval_mux(V3::One, V3::One, V3::X), V3::X);
    }

    #[test]
    fn parallel_slots_are_independent() {
        let nl = mux();
        let mut sim = CombSim::new(&nl);
        let mut vals = vec![W3::ALL_X; nl.num_nets()];
        // slot 0: a=1,s=0 -> y=1 ; slot 1: b=1,s=1 -> y=1 ; slot 2: all 0 -> 0
        let mut a = W3::ALL_X;
        let mut b = W3::ALL_X;
        let mut s = W3::ALL_X;
        a.set(0, V3::One);
        b.set(0, V3::Zero);
        s.set(0, V3::Zero);
        a.set(1, V3::Zero);
        b.set(1, V3::One);
        s.set(1, V3::One);
        a.set(2, V3::Zero);
        b.set(2, V3::Zero);
        s.set(2, V3::Zero);
        vals[nl.find_net("a").unwrap().index()] = a;
        vals[nl.find_net("b").unwrap().index()] = b;
        vals[nl.find_net("s").unwrap().index()] = s;
        sim.eval(&mut vals);
        let y = vals[nl.find_net("y").unwrap().index()];
        assert_eq!(y.get(0), V3::One);
        assert_eq!(y.get(1), V3::One);
        assert_eq!(y.get(2), V3::Zero);
    }

    #[test]
    fn stem_override_forces_value() {
        let nl = mux();
        let mut sim = CombSim::new(&nl);
        let mut ov = Overrides::new(&nl);
        let t0 = nl.find_net("t0").unwrap();
        // Stuck-at-1 on t0 in slot 1 only.
        ov.add(
            Fault {
                site: FaultSite::Stem(t0),
                stuck: true,
            },
            0b10,
        );
        let mut vals = vec![W3::ALL_X; nl.num_nets()];
        vals[nl.find_net("a").unwrap().index()] = W3::ALL_ZERO;
        vals[nl.find_net("b").unwrap().index()] = W3::ALL_ZERO;
        vals[nl.find_net("s").unwrap().index()] = W3::ALL_ZERO;
        sim.eval_with(&mut vals, &ov);
        let y = vals[nl.find_net("y").unwrap().index()];
        assert_eq!(y.get(0), V3::Zero, "good machine unaffected");
        assert_eq!(y.get(1), V3::One, "faulty machine sees stuck-at-1");
    }

    #[test]
    fn pin_override_affects_single_branch() {
        let nl = s27();
        let mut sim = CombSim::new(&nl);
        // G11 fans out to G17 (a NOT gate driving the PO) and others. A
        // pin fault on G17's input must flip the PO without disturbing the
        // other branches.
        let g11 = nl.find_net("G11").unwrap();
        let g17_gate = match nl.driver(nl.find_net("G17").unwrap()) {
            Driver::Gate(g) => g,
            other => panic!("unexpected driver {other:?}"),
        };
        let mut ov = Overrides::new(&nl);
        ov.add(
            Fault {
                site: FaultSite::GatePin(g17_gate, 0),
                stuck: true,
            },
            0b10,
        );
        let mut vals = vec![W3::ALL_X; nl.num_nets()];
        for &pi in nl.pis() {
            vals[pi.index()] = W3::ALL_ZERO;
        }
        for ff in nl.ffs() {
            vals[ff.q().index()] = W3::ALL_ZERO;
        }
        sim.eval_with(&mut vals, &ov);
        // The branch value itself (stem G11) is untouched in both slots.
        assert_eq!(vals[g11.index()].get(0), vals[g11.index()].get(1));
        let g17 = nl.find_net("G17").unwrap();
        assert_eq!(vals[g17.index()].get(0), V3::One);
        assert_eq!(vals[g17.index()].get(1), V3::Zero);
    }

    #[test]
    fn clear_resets_and_is_reusable() {
        let nl = mux();
        let mut sim = CombSim::new(&nl);
        let mut ov = Overrides::new(&nl);
        ov.add(
            Fault {
                site: FaultSite::Stem(nl.find_net("y").unwrap()),
                stuck: true,
            },
            !1u64,
        );
        assert!(!ov.is_empty());
        ov.clear();
        assert!(ov.is_empty());
        let mut vals = vec![W3::ALL_X; nl.num_nets()];
        vals[nl.find_net("a").unwrap().index()] = W3::ALL_ZERO;
        vals[nl.find_net("b").unwrap().index()] = W3::ALL_ZERO;
        vals[nl.find_net("s").unwrap().index()] = W3::ALL_ZERO;
        sim.eval_with(&mut vals, &ov);
        assert_eq!(vals[nl.find_net("y").unwrap().index()], W3::ALL_ZERO);
    }

    #[test]
    fn source_stem_override_applies_to_seeded_pi() {
        let nl = mux();
        let mut sim = CombSim::new(&nl);
        let mut ov = Overrides::new(&nl);
        let a = nl.find_net("a").unwrap();
        ov.add(
            Fault {
                site: FaultSite::Stem(a),
                stuck: true,
            },
            0b10,
        );
        let mut vals = vec![W3::ALL_X; nl.num_nets()];
        vals[a.index()] = W3::ALL_ZERO;
        vals[nl.find_net("b").unwrap().index()] = W3::ALL_ZERO;
        vals[nl.find_net("s").unwrap().index()] = W3::ALL_ZERO;
        sim.eval_with(&mut vals, &ov);
        let y = vals[nl.find_net("y").unwrap().index()];
        assert_eq!(y.get(0), V3::Zero);
        assert_eq!(y.get(1), V3::One);
    }
}
