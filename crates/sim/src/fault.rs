//! The single stuck-at fault model and structural equivalence collapsing.
//!
//! The fault universe contains, for both stuck-at-0 and stuck-at-1:
//!
//! - a **stem** fault on every net (primary inputs, gate outputs, flip-flop
//!   outputs), and
//! - a **branch** fault on every consumer pin of nets with fanout greater
//!   than one (gate input pins, flip-flop D inputs, primary-output
//!   positions). Pins of fanout-free nets are equivalent to the stem and are
//!   not enumerated separately.
//!
//! Structural equivalence collapsing merges the classic gate-local classes
//! (for example, any AND input stuck-at-0 with the AND output stuck-at-0;
//! a flip-flop behaves as a buffer). On the embedded s27 fixture this yields
//! the well-known counts of 52 total and 32 collapsed faults.

use std::collections::HashMap;
use std::fmt;

use atspeed_circuit::{FfId, GateId, GateKind, NetId, Netlist, PoId, Sink};

/// Where a stuck-at fault is located.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// On a net's stem, affecting every consumer.
    Stem(NetId),
    /// On one gate input pin, affecting only that gate.
    GatePin(GateId, u8),
    /// On a flip-flop's D input, affecting only the captured value.
    FfPin(FfId),
    /// On one primary-output position.
    PoPin(PoId),
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The fault's location.
    pub site: FaultSite,
    /// The stuck value: `true` for stuck-at-1.
    pub stuck: bool,
}

impl Fault {
    /// Renders the fault in the conventional `net[/pin] s-a-v` notation.
    pub fn describe(&self, nl: &Netlist) -> String {
        let v = u8::from(self.stuck);
        match self.site {
            FaultSite::Stem(n) => format!("{} s-a-{v}", nl.net_name(n)),
            FaultSite::GatePin(g, p) => {
                let gate = nl.gate(g);
                format!(
                    "{}->{} s-a-{v}",
                    nl.net_name(gate.inputs()[p as usize]),
                    nl.net_name(gate.output()),
                )
            }
            FaultSite::FfPin(f) => format!("{}->DFF s-a-{v}", nl.net_name(nl.ff(f).d())),
            FaultSite::PoPin(p) => format!("PO{} s-a-{v}", p.index()),
        }
    }
}

/// Identifies a fault within a [`FaultUniverse`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultId(u32);

impl FaultId {
    /// The dense index of this fault.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a fault id from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        FaultId(u32::try_from(i).expect("fault index overflow"))
    }
}

impl fmt::Debug for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The complete collapsed stuck-at fault universe of a netlist.
#[derive(Debug, Clone)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
    class_of: Vec<u32>,
    representatives: Vec<FaultId>,
}

impl FaultUniverse {
    /// Enumerates and collapses all stuck-at faults of `nl`.
    pub fn full(nl: &Netlist) -> Self {
        let mut faults = Vec::new();
        // Stems for every net, in net order: sa0 then sa1.
        for net in nl.net_ids() {
            faults.push(Fault {
                site: FaultSite::Stem(net),
                stuck: false,
            });
            faults.push(Fault {
                site: FaultSite::Stem(net),
                stuck: true,
            });
        }
        // Branch faults on pins of fanout stems.
        for net in nl.net_ids() {
            let sinks = nl.fanouts(net);
            if sinks.len() <= 1 {
                continue;
            }
            for &sink in sinks {
                let site = match sink {
                    Sink::GatePin(g, p) => FaultSite::GatePin(g, p),
                    Sink::FfD(f) => FaultSite::FfPin(f),
                    Sink::Po(p) => FaultSite::PoPin(p),
                };
                faults.push(Fault { site, stuck: false });
                faults.push(Fault { site, stuck: true });
            }
        }

        let lookup: HashMap<(FaultSite, bool), u32> = faults
            .iter()
            .enumerate()
            .map(|(i, f)| ((f.site, f.stuck), i as u32))
            .collect();
        let index_of = |site: FaultSite, stuck: bool, _faults: &[Fault]| -> u32 {
            *lookup
                .get(&(site, stuck))
                .expect("fault exists in universe")
        };
        // Union-find for equivalence collapsing.
        let mut parent: Vec<u32> = (0..faults.len() as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        let union = |parent: &mut Vec<u32>, a: u32, b: u32| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                // Keep the smaller index as the class representative.
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi as usize] = lo;
            }
        };

        // The fault handle for the value feeding a sink pin: the pin's own
        // branch fault when the source net fans out, else the source stem.
        let pin_handle = |net: NetId, sink: Sink, stuck: bool, faults: &[Fault]| -> u32 {
            if nl.fanouts(net).len() > 1 {
                let site = match sink {
                    Sink::GatePin(g, p) => FaultSite::GatePin(g, p),
                    Sink::FfD(f) => FaultSite::FfPin(f),
                    Sink::Po(p) => FaultSite::PoPin(p),
                };
                index_of(site, stuck, faults)
            } else {
                index_of(FaultSite::Stem(net), stuck, faults)
            }
        };

        for (gi, g) in nl.gates().iter().enumerate() {
            let gid = GateId::from_index(gi);
            let out = g.output();
            let out_f = |stuck: bool| index_of(FaultSite::Stem(out), stuck, &faults);
            for (p, &inet) in g.inputs().iter().enumerate() {
                let sink = Sink::GatePin(gid, p as u8);
                match g.kind() {
                    GateKind::And => union(
                        &mut parent,
                        pin_handle(inet, sink, false, &faults),
                        out_f(false),
                    ),
                    GateKind::Nand => union(
                        &mut parent,
                        pin_handle(inet, sink, false, &faults),
                        out_f(true),
                    ),
                    GateKind::Or => union(
                        &mut parent,
                        pin_handle(inet, sink, true, &faults),
                        out_f(true),
                    ),
                    GateKind::Nor => union(
                        &mut parent,
                        pin_handle(inet, sink, true, &faults),
                        out_f(false),
                    ),
                    GateKind::Buf => {
                        union(
                            &mut parent,
                            pin_handle(inet, sink, false, &faults),
                            out_f(false),
                        );
                        union(
                            &mut parent,
                            pin_handle(inet, sink, true, &faults),
                            out_f(true),
                        );
                    }
                    GateKind::Not => {
                        union(
                            &mut parent,
                            pin_handle(inet, sink, false, &faults),
                            out_f(true),
                        );
                        union(
                            &mut parent,
                            pin_handle(inet, sink, true, &faults),
                            out_f(false),
                        );
                    }
                    GateKind::Xor | GateKind::Xnor => {}
                }
            }
        }
        // Note: faults are deliberately NOT collapsed across flip-flops.
        // In a scan circuit the D and Q sides of a flip-flop are distinct
        // observation/control points: a Q-stem fault corrupts the scanned-in
        // state while a D-side fault corrupts the captured value before
        // scan-out, so the two are not equivalent under scan operations.

        let class_of: Vec<u32> = (0..faults.len() as u32)
            .map(|i| find(&mut parent, i))
            .collect();
        let mut representatives: Vec<FaultId> = class_of
            .iter()
            .enumerate()
            .filter(|(i, &c)| *i as u32 == c)
            .map(|(i, _)| FaultId::from_index(i))
            .collect();
        representatives.sort_unstable();

        FaultUniverse {
            faults,
            class_of,
            representatives,
        }
    }

    /// Total number of faults before collapsing.
    #[inline]
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// Number of equivalence classes (the paper's reported fault counts).
    #[inline]
    pub fn num_collapsed(&self) -> usize {
        self.representatives.len()
    }

    /// The fault with the given id.
    #[inline]
    pub fn fault(&self, id: FaultId) -> Fault {
        self.faults[id.index()]
    }

    /// One representative fault per equivalence class, ascending by id.
    /// Simulating representatives decides detection for every class member.
    #[inline]
    pub fn representatives(&self) -> &[FaultId] {
        &self.representatives
    }

    /// The representative of `id`'s equivalence class.
    #[inline]
    pub fn class_of(&self, id: FaultId) -> FaultId {
        FaultId(self.class_of[id.index()])
    }

    /// Iterates over all fault ids (uncollapsed).
    pub fn all_ids(&self) -> impl Iterator<Item = FaultId> + '_ {
        (0..self.faults.len()).map(FaultId::from_index)
    }

    /// The net whose value the fault corrupts (the branch's source net for
    /// pin faults).
    pub fn site_net(&self, nl: &Netlist, id: FaultId) -> NetId {
        match self.fault(id).site {
            FaultSite::Stem(n) => n,
            FaultSite::GatePin(g, p) => nl.gate(g).inputs()[p as usize],
            FaultSite::FfPin(f) => nl.ff(f).d(),
            FaultSite::PoPin(p) => nl.pos()[p.index()],
        }
    }
}

/// Convenience: whether `nl` has any net observable only through state
/// (i.e., flip-flops exist), which decides if scan-out matters.
pub fn has_state(nl: &Netlist) -> bool {
    nl.num_ffs() > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::bench_fmt::s27;
    use atspeed_circuit::{GateKind, NetlistBuilder};

    #[test]
    fn s27_fault_counts_match_classic_values() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        assert_eq!(u.num_faults(), 52, "uncollapsed");
        assert_eq!(u.num_collapsed(), 32, "collapsed");
    }

    #[test]
    fn representatives_are_class_fixpoints() {
        let u = FaultUniverse::full(&s27());
        for &rep in u.representatives() {
            assert_eq!(u.class_of(rep), rep);
        }
        for id in u.all_ids() {
            let c = u.class_of(id);
            assert_eq!(u.class_of(c), c, "class_of is idempotent");
            assert!(c <= id, "representative is the smallest member");
        }
    }

    #[test]
    fn classes_partition_the_universe() {
        let u = FaultUniverse::full(&s27());
        let covered: usize = u
            .all_ids()
            .filter(|&id| u.representatives().contains(&u.class_of(id)))
            .count();
        assert_eq!(covered, u.num_faults());
    }

    #[test]
    fn inverter_chain_collapses_fully() {
        // a -> NOT x -> NOT y: all faults collapse to 2 classes
        // (a s-a-0 ≡ x s-a-1 ≡ y s-a-0, and the complements).
        let mut b = NetlistBuilder::new("chain");
        b.input("a");
        b.gate(GateKind::Not, "x", &["a"]);
        b.gate(GateKind::Not, "y", &["x"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let u = FaultUniverse::full(&nl);
        assert_eq!(u.num_faults(), 6);
        assert_eq!(u.num_collapsed(), 2);
    }

    #[test]
    fn and_gate_collapsing() {
        // y = AND(a, b): a/0 ≡ b/0 ≡ y/0, so 6 faults -> 4 classes.
        let mut b = NetlistBuilder::new("and2");
        b.input("a");
        b.input("b");
        b.gate(GateKind::And, "y", &["a", "b"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let u = FaultUniverse::full(&nl);
        assert_eq!(u.num_faults(), 6);
        assert_eq!(u.num_collapsed(), 4);
    }

    #[test]
    fn xor_gate_does_not_collapse() {
        let mut b = NetlistBuilder::new("xor2");
        b.input("a");
        b.input("b");
        b.gate(GateKind::Xor, "y", &["a", "b"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let u = FaultUniverse::full(&nl);
        assert_eq!(u.num_faults(), 6);
        assert_eq!(u.num_collapsed(), 6);
    }

    #[test]
    fn fanout_creates_branch_faults() {
        // a feeds two gates: 2 stems for a + 2 branches per pin.
        let mut b = NetlistBuilder::new("fan");
        b.input("a");
        b.gate(GateKind::Not, "x", &["a"]);
        b.gate(GateKind::Buf, "y", &["a"]);
        b.output("x");
        b.output("y");
        let nl = b.finish().unwrap();
        let u = FaultUniverse::full(&nl);
        // Nets: a, x, y -> 6 stems; branches on a's two pins -> 4.
        assert_eq!(u.num_faults(), 10);
        // NOT collapses pin faults into x stems; BUF into y stems;
        // a's stem faults remain distinct: 6 classes.
        assert_eq!(u.num_collapsed(), 6);
    }

    #[test]
    fn ff_boundary_is_not_collapsed() {
        let mut b = NetlistBuilder::new("dffc");
        b.input("a");
        b.dff("q", "d");
        b.gate(GateKind::Not, "d", &["a"]);
        b.gate(GateKind::Not, "y", &["q"]);
        b.output("y");
        let nl = b.finish().unwrap();
        let u = FaultUniverse::full(&nl);
        // Chain a -NOT- d -DFF- q -NOT- y: the inverters collapse their own
        // pin/stem pairs, but the flip-flop boundary keeps the D-side and
        // Q-side classes apart (scan controls/observes them separately):
        // {a/0 ≡ d/1, a/1 ≡ d/0, q/0 ≡ y/1, q/1 ≡ y/0}.
        assert_eq!(u.num_collapsed(), 4);
    }

    #[test]
    fn describe_names_sites() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        let descriptions: Vec<String> = u
            .representatives()
            .iter()
            .map(|&id| u.fault(id).describe(&nl))
            .collect();
        assert!(descriptions.iter().any(|d| d.contains("s-a-0")));
        assert!(descriptions.iter().any(|d| d.contains("s-a-1")));
    }

    #[test]
    fn site_net_resolves_pins() {
        let nl = s27();
        let u = FaultUniverse::full(&nl);
        for id in u.all_ids() {
            let net = u.site_net(&nl, id);
            assert!(net.index() < nl.num_nets());
        }
    }
}
