//! Bit-parallel 3-valued logic simulation and stuck-at fault simulation.
//!
//! This crate is the simulation substrate of the reproduction of
//! Pomeranz & Reddy (DAC 2001). It provides:
//!
//! - [`logic`] — a 3-valued (0/1/X) logic system packed 64 slots per word,
//!   so one gate evaluation advances 64 independent machines;
//! - [`vectors`] — primary-input sequences and state vectors;
//! - [`comb`] — levelized combinational evaluation with fault-injection
//!   overrides;
//! - [`fault`] — the single stuck-at fault universe with structural
//!   equivalence collapsing;
//! - [`fsim_comb`] — parallel-pattern single-fault (PPSFP) combinational
//!   fault simulation over the full-scan view, with an event-driven
//!   propagation core;
//! - [`fsim_seq`] — parallel-fault sequential fault simulation (good machine
//!   in slot 0, up to 63 faulty machines per pass) producing the *detection
//!   profiles* (earliest primary-output detection time, per-cycle state
//!   difference sets) that Phase 1 of the paper consumes;
//! - [`parallel`] — [`ParallelFsim`], a multi-threaded front end that
//!   shards faults (or tests, with cross-partition fault dropping through
//!   a shared atomic bitmap) across `std::thread::scope` workers behind a
//!   [`SimConfig`]; `threads = 1` reproduces the serial engines
//!   bit-for-bit;
//! - [`stats`] — per-phase instrumentation counters (gate evaluations,
//!   fault-sim invocations, faults dropped, wall time per partition)
//!   snapshotted into a [`SimReport`].
//!
//! # Example
//!
//! ```
//! use atspeed_circuit::bench_fmt::s27;
//! use atspeed_sim::fault::FaultUniverse;
//!
//! let nl = s27();
//! let faults = FaultUniverse::full(&nl);
//! // s27's classic fault statistics: 52 uncollapsed, 32 collapsed.
//! assert_eq!(faults.num_faults(), 52);
//! assert_eq!(faults.num_collapsed(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "wide-simd", feature(portable_simd))]

pub mod comb;
pub mod fault;
pub mod fsim_comb;
pub mod fsim_seq;
pub mod fused;
pub mod kernel;
pub mod logic;
pub mod parallel;
pub mod stats;
pub mod transition;
pub mod vcd;
pub mod vectors;

pub use comb::{CombSim, Overrides};
pub use fault::{Fault, FaultId, FaultSite, FaultUniverse};
pub use fsim_comb::{CombFaultSim, CombTest};
pub use fsim_seq::{DetectionProfile, FinalObserve, SeqFaultSim, SeqSim};
pub use fused::{FusedSim, FUSED_SLICE_PAD};
pub use kernel::{CompiledSim, SimScratch};
pub use logic::{W3x4, LANES, V3, W3};
pub use parallel::{EngineKind, MatrixMismatch, ParallelFsim, SimConfig};
pub use stats::{PhaseStats, SimReport};
pub use transition::{TransitionFault, TransitionFaultSim};
pub use vectors::{try_parse_values, ParseError, Sequence, State};
