//! Property-based tests for the simulation substrate.

use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_circuit::{GateKind, Netlist};
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{CombFaultSim, CombSim, CombTest, SeqFaultSim, SeqSim, Sequence, V3, W3};
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..6, 1usize..4, 1usize..8, 8usize..80, any::<u64>()).prop_map(
        |(pis, pos, ffs, gates, seed)| {
            generate(&SynthSpec::new("prop", pis, pos, ffs, gates, seed)).unwrap()
        },
    )
}

fn arb_v3() -> impl Strategy<Value = V3> {
    prop_oneof![Just(V3::Zero), Just(V3::One), Just(V3::X)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed gate evaluation agrees with scalar gate evaluation for every
    /// kind and input mix.
    #[test]
    fn packed_matches_scalar_eval(
        kind in prop_oneof![
            Just(GateKind::And), Just(GateKind::Nand), Just(GateKind::Or),
            Just(GateKind::Nor), Just(GateKind::Xor), Just(GateKind::Xnor),
        ],
        inputs in prop::collection::vec(arb_v3(), 1..5),
        slot in 0usize..64,
    ) {
        let words: Vec<W3> = inputs
            .iter()
            .map(|&v| {
                let mut w = W3::ALL_X;
                w.set(slot, v);
                w
            })
            .collect();
        let packed = W3::eval_gate(kind, &words).get(slot);
        let scalar = V3::eval_gate(kind, &inputs);
        prop_assert_eq!(packed, scalar);
    }

    /// Simulating a circuit with per-slot inputs equals simulating each
    /// slot alone (slot independence of the packed evaluator).
    #[test]
    fn packed_slots_are_independent(nl in arb_netlist(), seed in any::<u64>()) {
        let mut sim = CombSim::new(&nl);
        let mut rng = seed;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng & 1 == 1
        };
        // Two random input assignments in slots 0 and 1.
        let mut vals = vec![W3::ALL_X; nl.num_nets()];
        let mut scalars: Vec<Vec<V3>> = vec![Vec::new(); 2];
        for &pi in nl.pis() {
            let mut w = W3::ALL_X;
            for (s, sc) in scalars.iter_mut().enumerate() {
                let v = V3::from_bool(next());
                w.set(s, v);
                sc.push(v);
            }
            vals[pi.index()] = w;
        }
        for ff in nl.ffs() {
            let mut w = W3::ALL_X;
            for (s, sc) in scalars.iter_mut().enumerate() {
                let v = V3::from_bool(next());
                w.set(s, v);
                sc.push(v);
            }
            vals[ff.q().index()] = w;
        }
        sim.eval(&mut vals);
        // Replay each slot alone.
        for (s, sc) in scalars.iter().enumerate() {
            let mut alone = vec![W3::ALL_X; nl.num_nets()];
            for (i, &pi) in nl.pis().iter().enumerate() {
                alone[pi.index()] = W3::broadcast(sc[i]);
            }
            for (f, ff) in nl.ffs().iter().enumerate() {
                alone[ff.q().index()] = W3::broadcast(sc[nl.num_pis() + f]);
            }
            sim.eval(&mut alone);
            for net in nl.net_ids() {
                prop_assert_eq!(vals[net.index()].get(s), alone[net.index()].get(0));
            }
        }
    }

    /// The event-driven PPSFP core agrees with brute-force re-simulation on
    /// random circuits and random test blocks.
    #[test]
    fn event_driven_fsim_matches_bruteforce(nl in arb_netlist(), seed in any::<u64>()) {
        let u = FaultUniverse::full(&nl);
        let mut sim = CombFaultSim::new(&nl);
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng & 1 == 1
        };
        let tests: Vec<CombTest> = (0..16)
            .map(|_| {
                CombTest::new(
                    (0..nl.num_ffs()).map(|_| V3::from_bool(next())).collect(),
                    (0..nl.num_pis()).map(|_| V3::from_bool(next())).collect(),
                )
            })
            .collect();
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let fast = sim.detect_block(&tests, &faults, &u);
        let slow = sim.detect_block_bruteforce(&tests, &faults, &u);
        for (k, (&a, &b)) in fast.iter().zip(slow.iter()).enumerate() {
            prop_assert_eq!(a, b, "fault {}", u.fault(faults[k]).describe(&nl));
        }
    }

    /// A single-vector scan test behaves identically through the
    /// combinational (PPSFP) and sequential (parallel-fault) engines.
    #[test]
    fn comb_and_seq_engines_agree_on_single_vector_tests(
        nl in arb_netlist(),
        seed in any::<u64>(),
    ) {
        let u = FaultUniverse::full(&nl);
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng & 1 == 1
        };
        let state: Vec<V3> = (0..nl.num_ffs()).map(|_| V3::from_bool(next())).collect();
        let inputs: Vec<V3> = (0..nl.num_pis()).map(|_| V3::from_bool(next())).collect();
        let faults: Vec<FaultId> = u.representatives().to_vec();

        let mut csim = CombFaultSim::new(&nl);
        let test = CombTest::new(state.clone(), inputs.clone());
        let cmasks = csim.detect_block(std::slice::from_ref(&test), &faults, &u);

        let mut ssim = SeqFaultSim::new(&nl);
        let seq: Sequence = std::iter::once(inputs).collect();
        let sdet = ssim.detect(&state, &seq, &faults, &u, true);

        for (k, (&m, &d)) in cmasks.iter().zip(sdet.iter()).enumerate() {
            prop_assert_eq!(m & 1 != 0, d, "fault {}", u.fault(faults[k]).describe(&nl));
        }
    }

    /// Detection profiles are consistent: `detected_by_prefix` is monotone
    /// in the prefix length once the primary-output detection time passes,
    /// and the full-length verdict matches plain detection.
    #[test]
    fn profiles_are_consistent_with_detection(nl in arb_netlist(), seed in any::<u64>()) {
        let u = FaultUniverse::full(&nl);
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng & 1 == 1
        };
        let seq: Sequence = (0..12)
            .map(|_| (0..nl.num_pis()).map(|_| V3::from_bool(next())).collect::<Vec<_>>())
            .collect();
        let init: Vec<V3> = (0..nl.num_ffs()).map(|_| V3::from_bool(next())).collect();
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let mut fsim = SeqFaultSim::new(&nl);
        let profiles = fsim.profiles(&init, &seq, &faults, &u);
        let det = fsim.detect(&init, &seq, &faults, &u, true);
        for (k, p) in profiles.iter().enumerate() {
            prop_assert_eq!(det[k], p.detected_by_prefix(seq.len() - 1));
            if let Some(d) = p.po_detect {
                for i in d as usize..seq.len() {
                    prop_assert!(p.detected_by_prefix(i), "monotone after PO detect");
                }
                prop_assert_eq!(
                    p.earliest_detection().map(|e| e <= d),
                    Some(true)
                );
            }
        }
    }

    /// Good simulation traces agree between `SeqSim` and slot 0 of the
    /// fault simulator's machinery (via an empty fault list detect run).
    #[test]
    fn good_trace_states_feed_forward(nl in arb_netlist(), seed in any::<u64>()) {
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng & 1 == 1
        };
        let seq: Sequence = (0..6)
            .map(|_| (0..nl.num_pis()).map(|_| V3::from_bool(next())).collect::<Vec<_>>())
            .collect();
        let init: Vec<V3> = (0..nl.num_ffs()).map(|_| V3::from_bool(next())).collect();
        let sim = SeqSim::new(&nl);
        let full = sim.run(&init, &seq);
        // Re-running the suffix from an intermediate state gives the same
        // tail (the state captures everything that matters).
        let mid = seq.len() / 2;
        if mid > 0 && mid < seq.len() {
            let tail = sim.run(&full.states[mid - 1], &seq.subrange(mid, seq.len() - 1));
            prop_assert_eq!(&tail.po_values[..], &full.po_values[mid..]);
            prop_assert_eq!(&tail.states[..], &full.states[mid..]);
        }
    }
}
