//! Property-based tests for [`ParallelFsim`]: at every thread count, every
//! parallel operation reports exactly the detected-fault sets of the
//! single-threaded engines on randomly synthesized circuits.
//!
//! This is the determinism contract the whole workspace relies on —
//! `SIM_THREADS` may change wall time, never results.

use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_circuit::Netlist;
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{
    CombFaultSim, CombTest, ParallelFsim, SeqFaultSim, Sequence, SimConfig, State, V3,
};
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..6, 1usize..4, 2usize..8, 10usize..80, any::<u64>()).prop_map(
        |(pis, pos, ffs, gates, seed)| {
            generate(&SynthSpec::new("prop", pis, pos, ffs, gates, seed)).unwrap()
        },
    )
}

/// Deterministic pseudo-random bit stream (cheap xorshift, test-local).
struct Bits(u64);

impl Bits {
    fn next(&mut self) -> bool {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 & 1 == 1
    }

    fn v3(&mut self) -> V3 {
        V3::from_bool(self.next())
    }
}

fn comb_tests(nl: &Netlist, n: usize, bits: &mut Bits) -> Vec<CombTest> {
    (0..n)
        .map(|_| {
            CombTest::new(
                (0..nl.num_ffs()).map(|_| bits.v3()).collect(),
                (0..nl.num_pis()).map(|_| bits.v3()).collect(),
            )
        })
        .collect()
}

fn sequence(nl: &Netlist, len: usize, bits: &mut Bits) -> Sequence {
    Sequence::from_vectors(
        (0..len)
            .map(|_| (0..nl.num_pis()).map(|_| bits.v3()).collect())
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Combinational ops: fault-sharded (`detect_block`, `detect_matrix`)
    /// and test-sharded with the shared detection bitmap (`detect_all`)
    /// all match the serial engine exactly.
    #[test]
    fn parallel_comb_matches_serial(
        nl in arb_netlist(),
        seed in any::<u64>(),
        threads in 2usize..6,
        num_tests in 1usize..150,
    ) {
        let u = FaultUniverse::full(&nl);
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let mut bits = Bits(seed | 1);
        let tests = comb_tests(&nl, num_tests, &mut bits);

        let mut serial = CombFaultSim::new(&nl);
        let par = ParallelFsim::new(&nl, SimConfig::with_threads(threads));

        let block = &tests[..tests.len().min(64)];
        prop_assert_eq!(
            serial.detect_block(block, &faults, &u),
            par.detect_block(block, &faults, &u)
        );
        prop_assert_eq!(
            serial.detect_all(&tests, &faults, &u),
            par.detect_all(&tests, &faults, &u)
        );
        prop_assert_eq!(
            serial.detect_matrix(&tests, &faults, &u),
            par.detect_matrix(&tests, &faults, &u)
        );
    }

    /// Sequential ops: fault-sharded `detect`/`profiles` and the
    /// test-sharded `detect_union` report the serial detected sets.
    #[test]
    fn parallel_seq_matches_serial(
        nl in arb_netlist(),
        seed in any::<u64>(),
        threads in 2usize..6,
        seq_len in 1usize..40,
        chunk in 0usize..4,
    ) {
        let u = FaultUniverse::full(&nl);
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let mut bits = Bits(seed | 1);
        let seq = sequence(&nl, seq_len, &mut bits);
        let init: State = (0..nl.num_ffs()).map(|_| bits.v3()).collect();

        let mut serial = SeqFaultSim::new(&nl);
        let cfg = SimConfig { threads, chunk_size: chunk, ..SimConfig::default() };
        let par = ParallelFsim::new(&nl, cfg);

        prop_assert_eq!(
            serial.detect(&init, &seq, &faults, &u, true),
            par.detect(&init, &seq, &faults, &u, true)
        );
        let sp = serial.profiles(&init, &seq, &faults, &u);
        let pp = par.profiles(&init, &seq, &faults, &u);
        prop_assert_eq!(sp.len(), pp.len());
        for (a, b) in sp.iter().zip(pp.iter()) {
            prop_assert_eq!(a.earliest_detection(), b.earliest_detection());
        }

        // A small batch of scan tests for the union path.
        let runs_owned: Vec<(State, Sequence)> = (0..4)
            .map(|_| {
                let si: State = (0..nl.num_ffs()).map(|_| bits.v3()).collect();
                let s = sequence(&nl, 1 + seq_len / 2, &mut bits);
                (si, s)
            })
            .collect();
        let runs: Vec<(&State, &Sequence)> =
            runs_owned.iter().map(|(s, q)| (s, q)).collect();
        let serial_union =
            ParallelFsim::new(&nl, SimConfig::default()).detect_union(&runs, &faults, &u, true);
        prop_assert_eq!(
            serial_union,
            par.detect_union(&runs, &faults, &u, true)
        );
    }
}
