//! Differential tests: the compiled CSR kernel against the legacy
//! pointer-walking evaluator, and the serial engines against the parallel
//! front end at `SIM_THREADS` ∈ {1, 4}.
//!
//! The legacy [`CombSim`] walker is the reference implementation: every
//! property here demands *bit-identical* values or detection masks from the
//! compiled full-pass, override, and event-driven delta paths, including
//! 3-valued X inputs and fault-injection overrides.

use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_circuit::{catalog, Netlist};
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{
    CombFaultSim, CombSim, CombTest, CompiledSim, Overrides, ParallelFsim, SeqSim, Sequence,
    SimConfig, SimScratch, V3, W3,
};
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..6, 1usize..4, 1usize..8, 8usize..80, any::<u64>()).prop_map(
        |(pis, pos, ffs, gates, seed)| {
            generate(&SynthSpec::new("prop", pis, pos, ffs, gates, seed)).unwrap()
        },
    )
}

/// Splitmix-style deterministic stream for seeding test values.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    move || {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A random 3-valued word: every slot independently 0, 1, or X.
fn random_w3(next: &mut impl FnMut() -> u64) -> W3 {
    let a = next();
    let b = next();
    W3 {
        zero: a & !b,
        one: !a & b,
    }
}

/// Seeds both a legacy value array and a compiled scratch with the same
/// random 3-valued sources and returns the source words.
fn seed_both(
    nl: &Netlist,
    vals: &mut [W3],
    scratch: &mut SimScratch,
    next: &mut impl FnMut() -> u64,
) {
    for &pi in nl.pis() {
        let w = random_w3(next);
        vals[pi.index()] = w;
        scratch.set_source(pi, w);
    }
    for ff in nl.ffs() {
        let w = random_w3(next);
        vals[ff.q().index()] = w;
        scratch.set_source(ff.q(), w);
    }
}

/// A random override set over up to 63 collapsed faults of `nl`.
fn random_overrides(nl: &Netlist, u: &FaultUniverse, next: &mut impl FnMut() -> u64) -> Overrides {
    let mut ov = Overrides::new(nl);
    let reps = u.representatives();
    for (k, &fid) in reps.iter().take(63).enumerate() {
        if next() & 3 == 0 {
            ov.add(u.fault(fid), 1u64 << (k % 63 + 1));
        }
    }
    ov
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Compiled full pass == legacy walker on arbitrary 3-valued inputs.
    #[test]
    fn compiled_full_pass_matches_legacy(nl in arb_netlist(), seed in any::<u64>()) {
        let mut next = rng(seed);
        let cc = nl.compiled();
        let sim = CompiledSim::new(cc);
        let mut scratch = SimScratch::new(cc);
        let mut legacy = CombSim::new(&nl);
        let mut vals = vec![W3::ALL_X; nl.num_nets()];
        for _ in 0..4 {
            seed_both(&nl, &mut vals, &mut scratch, &mut next);
            legacy.eval(&mut vals);
            sim.eval(&mut scratch);
            for net in nl.net_ids() {
                prop_assert_eq!(scratch.value(net), vals[net.index()]);
            }
        }
    }

    /// Compiled full pass with fault overrides == legacy walker with the
    /// same overrides (stem, gate-pin, FF-pin, and PO-pin faults).
    #[test]
    fn compiled_override_pass_matches_legacy(nl in arb_netlist(), seed in any::<u64>()) {
        let mut next = rng(seed);
        let u = FaultUniverse::full(&nl);
        let ov = random_overrides(&nl, &u, &mut next);
        let cc = nl.compiled();
        let sim = CompiledSim::new(cc);
        let mut scratch = SimScratch::new(cc);
        let mut legacy = CombSim::new(&nl);
        let mut vals = vec![W3::ALL_X; nl.num_nets()];
        for _ in 0..4 {
            seed_both(&nl, &mut vals, &mut scratch, &mut next);
            legacy.eval_with(&mut vals, &ov);
            sim.eval_with(&mut scratch, &ov);
            for net in nl.net_ids() {
                prop_assert_eq!(scratch.value(net), vals[net.index()]);
            }
        }
    }

    /// The event-driven delta path over a sequence of partial reseeds gives
    /// exactly the values of a legacy full pass, with and without overrides.
    #[test]
    fn compiled_delta_path_matches_legacy(nl in arb_netlist(), seed in any::<u64>()) {
        let mut next = rng(seed);
        let u = FaultUniverse::full(&nl);
        let ov = random_overrides(&nl, &u, &mut next);
        let cc = nl.compiled();
        let sim = CompiledSim::new(cc);
        let mut scratch = SimScratch::new(cc);
        let mut legacy = CombSim::new(&nl);
        let mut vals = vec![W3::ALL_X; nl.num_nets()];

        seed_both(&nl, &mut vals, &mut scratch, &mut next);
        legacy.eval_with(&mut vals, &ov);
        sim.eval_with(&mut scratch, &ov);
        for _ in 0..6 {
            // Reseed a random subset of sources (possibly none).
            for &pi in nl.pis() {
                if next() & 1 == 0 {
                    let w = random_w3(&mut next);
                    vals[pi.index()] = w;
                    scratch.set_source(pi, w);
                }
            }
            for ff in nl.ffs() {
                if next() & 1 == 0 {
                    let w = random_w3(&mut next);
                    vals[ff.q().index()] = w;
                    scratch.set_source(ff.q(), w);
                }
            }
            legacy.eval_with(&mut vals, &ov);
            sim.eval_delta_with(&mut scratch, &ov);
            for net in nl.net_ids() {
                prop_assert_eq!(scratch.value(net), vals[net.index()]);
            }
        }
    }

    /// Parallel fault sharding over the compiled engines returns the same
    /// masks as the legacy brute-force oracle at 1 and 4 threads.
    #[test]
    fn parallel_compiled_matches_bruteforce(nl in arb_netlist(), seed in any::<u64>()) {
        let mut next = rng(seed);
        let u = FaultUniverse::full(&nl);
        let faults: Vec<FaultId> = u.representatives().to_vec();
        let tests: Vec<CombTest> = (0..16)
            .map(|_| {
                CombTest::new(
                    (0..nl.num_ffs()).map(|_| V3::from_bool(next() & 1 == 1)).collect(),
                    (0..nl.num_pis()).map(|_| V3::from_bool(next() & 1 == 1)).collect(),
                )
            })
            .collect();
        let oracle = CombFaultSim::new(&nl).detect_block_bruteforce(&tests, &faults, &u);
        for threads in [1usize, 4] {
            let par = ParallelFsim::new(&nl, SimConfig::with_threads(threads));
            prop_assert_eq!(
                &par.detect_block(&tests, &faults, &u),
                &oracle,
                "threads = {}", threads
            );
        }
    }
}

/// Deterministic test block for a catalog circuit.
fn catalog_tests(nl: &Netlist, n: usize, seed: u64) -> Vec<CombTest> {
    let mut next = rng(seed);
    (0..n)
        .map(|_| {
            CombTest::new(
                (0..nl.num_ffs())
                    .map(|_| V3::from_bool(next() & 1 == 1))
                    .collect(),
                (0..nl.num_pis())
                    .map(|_| V3::from_bool(next() & 1 == 1))
                    .collect(),
            )
        })
        .collect()
}

/// An evenly spread sample of up to `cap` collapsed faults.
fn sample_faults(u: &FaultUniverse, cap: usize) -> Vec<FaultId> {
    let reps = u.representatives();
    let stride = (reps.len() / cap).max(1);
    reps.iter().copied().step_by(stride).take(cap).collect()
}

/// On every catalog circuit, the compiled event-driven PPSFP engine and the
/// legacy brute-force walker report bit-identical detection masks.
#[test]
fn catalog_detected_sets_match_legacy() {
    for info in catalog::all() {
        let nl = info.instantiate();
        let u = FaultUniverse::full(&nl);
        let faults = sample_faults(&u, 120);
        let tests = catalog_tests(&nl, 16, 0xA5A5 ^ info.num_gates as u64);
        let mut sim = CombFaultSim::new(&nl);
        let fast = sim.detect_block(&tests, &faults, &u);
        let slow = sim.detect_block_bruteforce(&tests, &faults, &u);
        assert_eq!(fast, slow, "detection masks diverge on {}", info.name);
    }
}

/// On every catalog circuit, the compiled sequential simulator (full pass at
/// t = 0, event-driven after) reproduces the legacy walker's primary-output
/// values and captured states exactly.
#[test]
fn catalog_good_traces_match_legacy() {
    for info in catalog::all() {
        let nl = info.instantiate();
        let mut next = rng(0x5EED ^ info.num_ffs as u64);
        let seq: Sequence = (0..10)
            .map(|_| {
                (0..nl.num_pis())
                    .map(|_| V3::from_bool(next() & 1 == 1))
                    .collect::<Vec<_>>()
            })
            .collect();
        let init: Vec<V3> = (0..nl.num_ffs())
            .map(|_| V3::from_bool(next() & 1 == 1))
            .collect();
        let trace = SeqSim::new(&nl).run(&init, &seq);

        // Legacy reference: per-cycle full walker passes.
        let mut legacy = CombSim::new(&nl);
        let mut vals = vec![W3::ALL_X; nl.num_nets()];
        let mut state: Vec<W3> = init.iter().map(|&v| W3::broadcast(v)).collect();
        for t in 0..seq.len() {
            let vec = seq.vector(t);
            for (i, &pi) in nl.pis().iter().enumerate() {
                vals[pi.index()] = W3::broadcast(vec[i]);
            }
            for (f, ff) in nl.ffs().iter().enumerate() {
                vals[ff.q().index()] = state[f];
            }
            legacy.eval(&mut vals);
            let pos: Vec<V3> = nl.pos().iter().map(|&po| vals[po.index()].get(0)).collect();
            assert_eq!(
                trace.po_values[t], pos,
                "PO values diverge on {}",
                info.name
            );
            state = nl.ffs().iter().map(|ff| vals[ff.d().index()]).collect();
            let st: Vec<V3> = state.iter().map(|w| w.get(0)).collect();
            assert_eq!(trace.states[t], st, "states diverge on {}", info.name);
        }
    }
}

/// Sequential fault detection through the parallel front end is identical
/// at 1 and 4 threads on a catalog circuit.
#[test]
fn catalog_seq_detection_thread_invariant() {
    let nl = catalog::by_name("s344").unwrap().instantiate();
    let u = FaultUniverse::full(&nl);
    let faults: Vec<FaultId> = u.representatives().to_vec();
    let mut next = rng(17);
    let seq: Sequence = (0..20)
        .map(|_| {
            (0..nl.num_pis())
                .map(|_| V3::from_bool(next() & 1 == 1))
                .collect::<Vec<_>>()
        })
        .collect();
    let init: Vec<V3> = vec![V3::Zero; nl.num_ffs()];
    let serial =
        ParallelFsim::new(&nl, SimConfig::with_threads(1)).detect(&init, &seq, &faults, &u, true);
    let threaded =
        ParallelFsim::new(&nl, SimConfig::with_threads(4)).detect(&init, &seq, &faults, &u, true);
    assert_eq!(serial, threaded);
    assert!(serial.iter().any(|&d| d), "some fault should be detected");
}
