//! Failing-case minimization in generator-parameter space.
//!
//! [`generate`](atspeed_circuit::synth::generate) is deterministic in its
//! [`SynthSpec`](atspeed_circuit::synth::SynthSpec), so a failing [`Case`]
//! shrinks by shrinking its *parameters* — fewer gates, flip-flops, and
//! pins (via [`SynthSpec::shrink_candidates`]), a shorter input sequence,
//! a smaller fault sample — while the seeds stay fixed so every candidate
//! reproduces exactly. Greedy descent: try candidates most-aggressive
//! first, move to the first one that still fails, repeat until no smaller
//! case fails or the step budget runs out.
//!
//! [`SynthSpec::shrink_candidates`]: atspeed_circuit::synth::SynthSpec::shrink_candidates

use crate::fuzz::{run_case, Case, Divergence};

/// Strictly smaller variants of `case`, most aggressive first: circuit
/// shrinks, then sequence truncation, then fault subsetting.
fn candidates(case: &Case) -> Vec<Case> {
    let mut out: Vec<Case> = Vec::new();
    let mut consider = |c: Case| {
        if !out.contains(&c) {
            out.push(c);
        }
    };
    for spec in case.spec.shrink_candidates() {
        consider(Case {
            spec,
            ..case.clone()
        });
    }
    for seq_len in [case.seq_len / 2, case.seq_len.saturating_sub(1)] {
        if seq_len >= 1 && seq_len < case.seq_len {
            consider(Case {
                seq_len,
                ..case.clone()
            });
        }
    }
    for fault_cap in [case.fault_cap / 2, case.fault_cap.saturating_sub(1)] {
        if fault_cap >= 1 && fault_cap < case.fault_cap {
            consider(Case {
                fault_cap,
                ..case.clone()
            });
        }
    }
    out
}

/// Minimizes a failing case against an arbitrary failure predicate.
///
/// `check` returns `Some(divergence)` when a case still fails. The starting
/// `case` must fail; the result is a case that still fails and from which
/// no candidate shrink does (a local minimum), unless `max_steps` check
/// evaluations ran out first.
///
/// # Panics
///
/// Panics if `check(case)` is `None` — minimizing a passing case is a
/// caller bug.
pub fn minimize_with(
    case: &Case,
    check: impl Fn(&Case) -> Option<Divergence>,
    max_steps: usize,
) -> (Case, Divergence) {
    let mut current = case.clone();
    let mut divergence = check(&current).expect("minimize_with requires a failing case");
    let mut steps = 0;
    'descend: loop {
        for cand in candidates(&current) {
            if steps >= max_steps {
                break 'descend;
            }
            steps += 1;
            if let Some(d) = check(&cand) {
                current = cand;
                divergence = d;
                continue 'descend;
            }
        }
        break;
    }
    (current, divergence)
}

/// Minimizes a case that fails [`run_case`] at the given thread counts.
///
/// Any divergence keeps a candidate (the shrunk case may fail a *different*
/// check than the original — that is still a smaller reproduction of an
/// engine disagreement); the returned divergence is the minimized case's.
pub fn minimize(case: &Case, threads: &[usize], max_steps: usize) -> (Case, Divergence) {
    let _sp = atspeed_trace::span("verify.shrink");
    minimize_with(case, |c| run_case(c, threads).err(), max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::synth::SynthSpec;

    fn big_case() -> Case {
        Case {
            spec: SynthSpec::new("shrink", 4, 2, 4, 40, 9),
            data_seed: 5,
            seq_len: 10,
            fault_cap: 30,
        }
    }

    /// Synthetic failure: diverges iff the circuit still has ≥ 12 gates and
    /// the sequence still has ≥ 3 vectors.
    fn synthetic(c: &Case) -> Option<Divergence> {
        (c.spec.num_gates >= 12 && c.seq_len >= 3).then(|| Divergence {
            check: "synthetic",
            detail: format!("{} gates, {} vectors", c.spec.num_gates, c.seq_len),
        })
    }

    #[test]
    fn descends_to_a_local_minimum() {
        let (min, div) = minimize_with(&big_case(), synthetic, 500);
        assert_eq!(div.check, "synthetic");
        // The predicate's exact boundary is reached on both axes…
        assert_eq!(min.spec.num_gates, 12);
        assert_eq!(min.seq_len, 3);
        // …and the axes the predicate ignores shrink all the way down.
        assert_eq!(min.spec.num_pis, 1);
        assert_eq!(min.spec.num_pos, 1);
        assert_eq!(min.spec.num_ffs, 0);
        assert_eq!(min.fault_cap, 1);
        // Seeds survive shrinking — the case stays reproducible.
        assert_eq!(min.spec.seed, 9);
        assert_eq!(min.data_seed, 5);
        // Local minimum: no candidate still fails.
        assert!(candidates(&min).iter().all(|c| synthetic(c).is_none()));
    }

    #[test]
    fn step_budget_bounds_the_descent() {
        let (min, _) = minimize_with(&big_case(), synthetic, 1);
        // One step only: at most one shrink was taken.
        assert!(min.spec.num_gates >= 20, "{min:?}");
    }

    #[test]
    fn returns_original_when_nothing_smaller_fails() {
        let orig = big_case();
        let only_orig = |c: &Case| {
            (*c == orig).then(|| Divergence {
                check: "synthetic",
                detail: "original only".into(),
            })
        };
        let (min, _) = minimize_with(&orig, only_orig, 500);
        assert_eq!(min, orig);
    }

    #[test]
    #[should_panic(expected = "requires a failing case")]
    fn passing_case_is_a_caller_bug() {
        minimize_with(&big_case(), |_| None, 10);
    }
}
