//! Differential verification for the test-compaction workspace.
//!
//! Every engine in this workspace exists in at least two independent
//! implementations: the legacy pointer-walking evaluator and the compiled
//! CSR kernel, the serial fault simulators and the multi-threaded
//! [`ParallelFsim`](atspeed_sim::ParallelFsim) front end, the serial
//! vector-omission sweep and its speculative parallel twin. That redundancy
//! is this crate's raw material. It provides:
//!
//! - [`fuzz`] — a differential fuzzer that drives
//!   [`synth::generate`](atspeed_circuit::synth::generate) through
//!   randomized (circuit, sequence, fault-set, thread-count) cases and
//!   asserts that every engine pair agrees bit-for-bit;
//! - [`shrink`] — a minimizer that walks failing cases down through
//!   generator-parameter space
//!   ([`SynthSpec::shrink_candidates`](atspeed_circuit::synth::SynthSpec::shrink_candidates)),
//!   sequence truncation, and fault subsetting until no smaller case still
//!   fails;
//! - [`repro`] — reproducible failure bundles: a `.bench` circuit, a
//!   vector file, and the case parameters, dumped to disk and loadable for
//!   replay;
//! - a re-export of the end-to-end coverage oracle that lives in
//!   [`atspeed_core::oracle`] (it must sit in `core` so the pipeline can
//!   call it behind [`Pipeline::verify`](atspeed_core::Pipeline::verify)).
//!
//! The `verifier` binary in the bench crate is the command-line front end.
//!
//! # Example
//!
//! ```
//! use atspeed_verify::fuzz::{run_fuzz, FuzzConfig};
//!
//! let outcome = run_fuzz(&FuzzConfig {
//!     seed: 0,
//!     iters: 3,
//!     ..FuzzConfig::default()
//! });
//! assert_eq!(outcome.cases_run, 3);
//! assert!(outcome.failures.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod repro;
pub mod shrink;

pub use atspeed_core::oracle::{verify_test_set, ClaimedCoverage, OracleReport};
pub use fuzz::{
    run_case, run_fuzz, run_malformed_fuzz, Case, CaseReport, Divergence, FuzzConfig, FuzzFailure,
    FuzzOutcome, MalformedOutcome,
};
pub use repro::{
    decode_stimuli, dump_repro, encode_stimuli, load_repro, replay, ReplayReport, ReproBundle,
    ReproError,
};
pub use shrink::{minimize, minimize_with};
