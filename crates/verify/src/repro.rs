//! Reproducible failure bundles.
//!
//! A diverging [`Case`] dumps to a directory holding everything needed to
//! replay it without this crate's generator in the loop:
//!
//! - `circuit.bench` — the generated circuit in `.bench` format;
//! - `vectors.txt` — the stimuli: line 1 is the initial flip-flop state
//!   (one `0`/`1`/`x` per flip-flop, scan-chain order), every following
//!   line one primary-input vector per functional clock cycle;
//! - `case.txt` — the generator parameters, seeds, and the divergence,
//!   as `key = value` lines.
//!
//! [`load_repro`] parses the bundle back (rejecting malformed vector files
//! through [`try_parse_values`]) and [`replay`] re-runs the serial-vs-
//! parallel differentials on the loaded artifacts.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use atspeed_atpg::compact::{check_omission_differential, OmissionConfig};
use atspeed_circuit::{bench_fmt, synth::generate, Netlist};
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{
    try_parse_values, ParallelFsim, ParseError, SeqFaultSim, Sequence, SimConfig, State,
};

use crate::fuzz::{case_stimuli, Case, Divergence};

/// Why a bundle failed to dump or load.
#[derive(Debug)]
pub enum ReproError {
    /// Filesystem trouble.
    Io(io::Error),
    /// The `.bench` text did not parse (or the case's spec did not generate).
    Circuit(String),
    /// A vector line held a character outside `0`, `1`, `x`, `X`.
    Vectors(ParseError),
    /// The files parse individually but disagree with each other (missing
    /// lines, vector width not matching the circuit interface).
    Layout(String),
}

impl std::fmt::Display for ReproError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReproError::Io(e) => write!(f, "repro bundle i/o error: {e}"),
            ReproError::Circuit(e) => write!(f, "repro bundle circuit error: {e}"),
            ReproError::Vectors(e) => write!(f, "repro bundle vector error: {e}"),
            ReproError::Layout(e) => write!(f, "repro bundle layout error: {e}"),
        }
    }
}

impl std::error::Error for ReproError {}

impl From<io::Error> for ReproError {
    fn from(e: io::Error) -> Self {
        ReproError::Io(e)
    }
}

/// A loaded reproduction bundle.
#[derive(Debug, Clone)]
pub struct ReproBundle {
    /// The circuit under test.
    pub netlist: Netlist,
    /// Initial flip-flop state.
    pub init: State,
    /// At-speed input sequence.
    pub seq: Sequence,
}

fn values_line(values: &[atspeed_sim::V3]) -> String {
    values.iter().map(|v| v.to_string()).collect()
}

/// Encodes stimuli in the bundle's `vectors.txt` wire format: line 1 is
/// the initial flip-flop state (one `0`/`1`/`x` per flip-flop), every
/// following line one primary-input vector per functional clock cycle.
///
/// The output is canonical — [`decode_stimuli`] followed by
/// `encode_stimuli` is the identity on well-formed text — which is what
/// lets a result cache compare serialized responses byte-for-byte.
pub fn encode_stimuli(init: &State, seq: &Sequence) -> String {
    let mut text = values_line(init);
    text.push('\n');
    for t in 0..seq.len() {
        text.push_str(&values_line(seq.vector(t)));
        text.push('\n');
    }
    text
}

/// Decodes the `vectors.txt` wire format against a circuit interface of
/// `num_ffs` flip-flops and `num_pis` primary inputs.
///
/// # Errors
///
/// Every malformed input is a distinct [`ReproError`], never a panic: a
/// bad logic character is [`ReproError::Vectors`] (with the offending
/// character and position), a missing line or width mismatch is
/// [`ReproError::Layout`]. Blank lines between vectors are tolerated.
pub fn decode_stimuli(
    text: &str,
    num_ffs: usize,
    num_pis: usize,
) -> Result<(State, Sequence), ReproError> {
    let mut lines = text.lines();
    let init_line = lines
        .next()
        .ok_or_else(|| ReproError::Layout("vectors.txt is empty".into()))?;
    let init = try_parse_values(init_line).map_err(ReproError::Vectors)?;
    if init.len() != num_ffs {
        return Err(ReproError::Layout(format!(
            "initial state has {} values but the circuit has {} flip-flops",
            init.len(),
            num_ffs
        )));
    }
    let mut seq = Sequence::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = try_parse_values(line).map_err(ReproError::Vectors)?;
        if v.len() != num_pis {
            return Err(ReproError::Layout(format!(
                "vector on line {} has {} values but the circuit has {} inputs",
                lineno + 2,
                v.len(),
                num_pis
            )));
        }
        seq.push(v);
    }
    Ok((init, seq))
}

/// Writes the reproduction bundle for `case` under `root` and returns the
/// bundle directory (`root/case-<circuit seed>-<data seed>/`).
///
/// # Errors
///
/// [`ReproError::Circuit`] if the case's spec no longer generates,
/// [`ReproError::Io`] on filesystem trouble.
pub fn dump_repro(
    root: &Path,
    case: &Case,
    divergence: &Divergence,
) -> Result<PathBuf, ReproError> {
    let nl = generate(&case.spec).map_err(|e| ReproError::Circuit(e.to_string()))?;
    let (init, seq) = case_stimuli(case, &nl);
    let dir = root.join(format!(
        "case-{:016x}-{:016x}",
        case.spec.seed, case.data_seed
    ));
    fs::create_dir_all(&dir)?;

    fs::write(dir.join("circuit.bench"), bench_fmt::write(&nl))?;

    fs::write(dir.join("vectors.txt"), encode_stimuli(&init, &seq))?;

    let case_txt = format!(
        "check = {}\ndetail = {}\nname = {}\nnum_pis = {}\nnum_pos = {}\nnum_ffs = {}\n\
         num_gates = {}\nlayers = {}\nfanout_hubs = {}\ncircuit_seed = {}\ndata_seed = {}\n\
         seq_len = {}\nfault_cap = {}\nreplay = verifier --replay {}\n",
        divergence.check,
        divergence.detail,
        case.spec.name,
        case.spec.num_pis,
        case.spec.num_pos,
        case.spec.num_ffs,
        case.spec.num_gates,
        case.spec.layers,
        case.spec.fanout_hubs,
        case.spec.seed,
        case.data_seed,
        case.seq_len,
        case.fault_cap,
        dir.display(),
    );
    fs::write(dir.join("case.txt"), case_txt)?;
    Ok(dir)
}

/// Loads a bundle written by [`dump_repro`] (or assembled by hand — any
/// `.bench` circuit plus a vector file works).
///
/// # Errors
///
/// Every malformed input is a distinct [`ReproError`]; in particular a bad
/// logic character in `vectors.txt` surfaces as [`ReproError::Vectors`]
/// with the offending character and position, not a panic.
pub fn load_repro(dir: &Path) -> Result<ReproBundle, ReproError> {
    let name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("repro")
        .to_owned();
    let bench = fs::read_to_string(dir.join("circuit.bench"))?;
    let netlist =
        bench_fmt::parse(&name, &bench).map_err(|e| ReproError::Circuit(e.to_string()))?;

    let text = fs::read_to_string(dir.join("vectors.txt"))?;
    let (init, seq) = decode_stimuli(&text, netlist.num_ffs(), netlist.num_pis())?;
    Ok(ReproBundle { netlist, init, seq })
}

/// What [`replay`] exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Collapsed faults simulated.
    pub faults: usize,
    /// Faults the sequence detects (serial reference).
    pub detected: usize,
    /// Whether the omission differential ran (it needs ≥ 2 vectors and at
    /// least one detected fault).
    pub omission_checked: bool,
}

/// Re-runs the serial-vs-parallel differentials on a loaded bundle: the
/// sequential detection comparison at each thread count, then the vector
/// omission differential on the detected faults.
///
/// # Errors
///
/// Returns the [`Divergence`] if the engines still disagree on the bundle.
pub fn replay(bundle: &ReproBundle, threads: &[usize]) -> Result<ReplayReport, Divergence> {
    let nl = &bundle.netlist;
    let u = FaultUniverse::full(nl);
    let faults: Vec<FaultId> = u.representatives().to_vec();
    let serial = SeqFaultSim::new(nl).detect(&bundle.init, &bundle.seq, &faults, &u, true);
    for &t in threads {
        let got = ParallelFsim::new(nl, SimConfig::with_threads(t)).detect(
            &bundle.init,
            &bundle.seq,
            &faults,
            &u,
            true,
        );
        if let Some(i) = serial.iter().zip(&got).position(|(a, b)| a != b) {
            return Err(Divergence {
                check: "seq-detect",
                detail: format!(
                    "threads {t}: fault {:?} serial detected={} parallel detected={}",
                    faults[i], serial[i], got[i]
                ),
            });
        }
    }
    let targets: Vec<FaultId> = faults
        .iter()
        .zip(&serial)
        .filter_map(|(&f, &d)| d.then_some(f))
        .collect();
    let omission_checked = bundle.seq.len() > 1 && !targets.is_empty();
    if omission_checked {
        check_omission_differential(
            nl,
            &u,
            &bundle.init,
            &bundle.seq,
            &targets,
            true,
            OmissionConfig::default(),
            threads,
        )
        .map_err(|d| Divergence {
            check: "omission",
            detail: d.to_string(),
        })?;
    }
    Ok(ReplayReport {
        faults: faults.len(),
        detected: targets.len(),
        omission_checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atspeed_circuit::synth::SynthSpec;

    fn scratch_dir(test: &str) -> PathBuf {
        std::env::temp_dir().join(format!("atspeed-verify-{}-{test}", std::process::id()))
    }

    fn small_case() -> Case {
        Case {
            spec: SynthSpec::new("fuzz", 3, 2, 2, 12, 42),
            data_seed: 7,
            seq_len: 5,
            fault_cap: 10,
        }
    }

    fn divergence() -> Divergence {
        Divergence {
            check: "seq-detect",
            detail: "synthetic bundle for tests".into(),
        }
    }

    #[test]
    fn dump_then_load_round_trips() {
        let root = scratch_dir("roundtrip");
        let case = small_case();
        let dir = dump_repro(&root, &case, &divergence()).unwrap();
        let bundle = load_repro(&dir).unwrap();

        let nl = generate(&case.spec).unwrap();
        assert_eq!(bundle.netlist.num_pis(), nl.num_pis());
        assert_eq!(bundle.netlist.num_ffs(), nl.num_ffs());
        assert_eq!(bundle.netlist.num_gates(), nl.num_gates());
        let (init, seq) = case_stimuli(&case, &nl);
        assert_eq!(bundle.init, init);
        assert_eq!(bundle.seq, seq);

        let case_txt = fs::read_to_string(dir.join("case.txt")).unwrap();
        assert!(case_txt.contains("check = seq-detect"));
        assert!(case_txt.contains("circuit_seed = 42"));

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn replay_passes_on_a_healthy_bundle() {
        let root = scratch_dir("replay");
        let dir = dump_repro(&root, &small_case(), &divergence()).unwrap();
        let bundle = load_repro(&dir).unwrap();
        let rep = replay(&bundle, &[2]).expect("healthy engines agree on replay");
        assert!(rep.faults > 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stimuli_codec_round_trips_canonically() {
        let case = small_case();
        let nl = generate(&case.spec).unwrap();
        let (init, seq) = case_stimuli(&case, &nl);
        let text = encode_stimuli(&init, &seq);
        let (init2, seq2) = decode_stimuli(&text, nl.num_ffs(), nl.num_pis()).unwrap();
        assert_eq!(init, init2);
        assert_eq!(seq, seq2);
        // Canonical: re-encoding the decoded stimuli is byte-identical.
        assert_eq!(encode_stimuli(&init2, &seq2), text);
    }

    #[test]
    fn bad_logic_character_is_a_vector_error_not_a_panic() {
        let root = scratch_dir("badchar");
        let dir = dump_repro(&root, &small_case(), &divergence()).unwrap();
        // Corrupt one vector: `q` is not a logic value.
        fs::write(dir.join("vectors.txt"), "00\n01q\n").unwrap();
        match load_repro(&dir) {
            Err(ReproError::Vectors(e)) => {
                assert_eq!(e.character, 'q');
                assert_eq!(e.position, 2);
            }
            other => panic!("expected a vector error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_vector_width_is_a_layout_error() {
        let root = scratch_dir("width");
        let dir = dump_repro(&root, &small_case(), &divergence()).unwrap();
        // Initial state is fine (2 FFs) but the vector is too narrow (3 PIs).
        fs::write(dir.join("vectors.txt"), "00\n01\n").unwrap();
        match load_repro(&dir) {
            Err(ReproError::Layout(msg)) => assert!(msg.contains("3 inputs"), "{msg}"),
            other => panic!("expected a layout error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&root);
    }
}
