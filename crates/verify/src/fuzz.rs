//! Differential fuzzing across independent engine implementations.
//!
//! A [`Case`] is a fully deterministic point in generator-parameter space:
//! a [`SynthSpec`] for the circuit, a data seed for the stimuli, a sequence
//! length, and a cap on the fault sample. [`run_case`] regenerates
//! everything from those parameters and runs every differential check the
//! workspace supports:
//!
//! 1. **logic** — the legacy [`CombSim`] walker against the compiled CSR
//!    kernel ([`CompiledSim`]) on the full-pass, fault-override, and
//!    event-driven delta paths, over random 3-valued inputs;
//!    and **logic-wide / logic-fused** — the wide (`W3x4`) compiled
//!    kernel lane-by-lane against the scalar one, and the cone-fused
//!    kernel ([`FusedSim`], scalar and wide) against the scalar compiled
//!    kernel on the nets the fused contract keeps live, on the same three
//!    paths; both also validate the dual-rail invariant explicitly (the
//!    kernels' own checks are `debug_assert`s, compiled out of release
//!    fuzzing binaries);
//! 2. **comb-detect / matrix** — the serial PPSFP engine against the
//!    test-sharded (fault-dropping) parallel front end, plus the
//!    fault-sharded detection matrix against the detection bitmap
//!    ([`ParallelFsim::check_matrix_consistency`]);
//! 3. **seq-detect** — serial sequential fault simulation against the
//!    fault-sharded parallel front end at each requested thread count;
//! 4. **omission** — the serial Phase-2 vector-omission sweep against the
//!    speculative parallel sweep
//!    ([`check_omission_differential`](atspeed_atpg::compact::check_omission_differential)).
//!
//! Any disagreement surfaces as a [`Divergence`]; [`run_fuzz`] then shrinks
//! the case ([`crate::shrink`]) and dumps a reproduction bundle
//! ([`crate::repro`]).

use std::path::PathBuf;

use atspeed_atpg::compact::{check_omission_differential, OmissionConfig};
use atspeed_circuit::synth::{generate, SynthSpec};
use atspeed_circuit::{NetId, Netlist};
use atspeed_sim::fault::{FaultId, FaultUniverse};
use atspeed_sim::{
    CombFaultSim, CombSim, CombTest, CompiledSim, FusedSim, Overrides, ParallelFsim, SeqFaultSim,
    Sequence, SimConfig, SimScratch, State, W3x4, LANES, V3, W3,
};

/// Salt so stimuli derivation is independent of how many random draws the
/// logic checks consumed (the repro dumper regenerates stimuli directly).
const STIMULI_SALT: u64 = 0x5717_0711;

/// One deterministic differential-fuzzing case.
///
/// Everything [`run_case`] simulates is a pure function of these fields:
/// the same case always reproduces the same circuit, stimuli, and verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// Generator parameters for the circuit under test.
    pub spec: SynthSpec,
    /// Seed for the stimuli (initial state, input sequence, test block).
    pub data_seed: u64,
    /// Length of the at-speed input sequence.
    pub seq_len: usize,
    /// Upper bound on the collapsed-fault sample size.
    pub fault_cap: usize,
}

impl Case {
    /// Derives case `i` of the fuzzing run with master seed `seed`.
    ///
    /// Every third case uses the layered generator (with occasional fanout
    /// hubs) at a larger gate count, so the structures the 100k-gate
    /// stress path exercises — deep layered logic, skewed fanout — are
    /// also differential-fuzzed, just at a CI-friendly scale.
    pub fn from_iteration(seed: u64, i: usize) -> Case {
        let mut next = rng(seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let num_pis = 2 + (next() % 4) as usize; // 2..=5
        let num_pos = 1 + (next() % 3) as usize; // 1..=3
        let num_ffs = 1 + (next() % 7) as usize; // 1..=7
        let floor = num_pos + num_ffs;
        let layered = i % 3 == 2;
        let num_gates = if layered {
            (40 + (next() % 160) as usize).max(floor) // 40..=199
        } else {
            (8 + (next() % 72) as usize).max(floor) // 8..=79
        };
        let mut spec = SynthSpec::new("fuzz", num_pis, num_pos, num_ffs, num_gates, next());
        if layered {
            spec = spec.with_layers(2 + (next() % 8) as usize); // 2..=9
            if next() & 1 == 0 {
                spec = spec.with_fanout_hubs(1 + (next() % 4) as usize); // 1..=4
            }
        }
        Case {
            spec,
            data_seed: next(),
            seq_len: 4 + (next() % 16) as usize,   // 4..=19
            fault_cap: 8 + (next() % 56) as usize, // 8..=63
        }
    }
}

/// A disagreement between two engine implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which differential check failed (`logic`, `logic-wide`,
    /// `logic-fused`, `comb-detect`, `matrix`, `seq-detect`, `omission`,
    /// or `synth` when generation itself errors). For the engine-variant
    /// checks the name records which kernel diverged — it is written into
    /// the repro bundle's `case.txt`.
    pub check: &'static str,
    /// Human-readable description of the first disagreement found.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "divergence in {}: {}", self.check, self.detail)
    }
}

impl std::error::Error for Divergence {}

/// What a clean [`run_case`] exercised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseReport {
    /// Differential comparisons performed.
    pub checks: usize,
    /// Collapsed faults in the sample.
    pub faults: usize,
    /// Nets in the generated circuit.
    pub nets: usize,
}

/// Splitmix-style deterministic stream for stimuli.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    move || {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A random 3-valued word: every slot independently 0, 1, or X.
fn random_w3(next: &mut impl FnMut() -> u64) -> W3 {
    let a = next();
    let b = next();
    W3 {
        zero: a & !b,
        one: !a & b,
    }
}

/// A random wide word: every lane an independent random [`W3`] (so the
/// wide checks see X-heavy, lane-diverse data).
fn random_w3x4(next: &mut impl FnMut() -> u64) -> W3x4 {
    let mut w = W3x4::ALL_X;
    for l in 0..LANES {
        w.set_lane(l, random_w3(next));
    }
    w
}

/// A random scalar value: X with probability 1/16, else a fair bit.
fn random_v3(next: &mut impl FnMut() -> u64) -> V3 {
    let r = next();
    if r.is_multiple_of(16) {
        V3::X
    } else if r & 2 != 0 {
        V3::One
    } else {
        V3::Zero
    }
}

/// The deterministic stimuli of a case: initial state and input sequence.
///
/// Derivation depends only on `case.data_seed`, `case.seq_len`, and the
/// circuit interface, so the repro dumper can regenerate byte-identical
/// vector files without re-running any checks.
pub fn case_stimuli(case: &Case, nl: &Netlist) -> (State, Sequence) {
    let mut next = rng(case.data_seed ^ STIMULI_SALT);
    let init: State = (0..nl.num_ffs()).map(|_| random_v3(&mut next)).collect();
    let seq: Sequence = (0..case.seq_len)
        .map(|_| (0..nl.num_pis()).map(|_| random_v3(&mut next)).collect())
        .collect();
    (init, seq)
}

/// An evenly spread sample of up to `cap` collapsed faults.
fn sample_faults(u: &FaultUniverse, cap: usize) -> Vec<FaultId> {
    let reps = u.representatives();
    let stride = (reps.len() / cap.max(1)).max(1);
    reps.iter().copied().step_by(stride).take(cap).collect()
}

/// A random override set over up to 63 collapsed faults.
fn random_overrides(nl: &Netlist, u: &FaultUniverse, next: &mut impl FnMut() -> u64) -> Overrides {
    let mut ov = Overrides::new(nl);
    for (k, &fid) in u.representatives().iter().take(63).enumerate() {
        if next() & 3 == 0 {
            ov.add(u.fault(fid), 1u64 << (k % 63 + 1));
        }
    }
    ov
}

/// Legacy walker vs compiled kernel on full, override, and delta paths.
fn check_logic(
    nl: &Netlist,
    u: &FaultUniverse,
    next: &mut impl FnMut() -> u64,
) -> Result<usize, Divergence> {
    let cc = nl.compiled();
    let sim = CompiledSim::new(cc);
    let mut scratch = SimScratch::new(cc);
    let mut legacy = CombSim::new(nl);
    let mut vals = vec![W3::ALL_X; nl.num_nets()];
    let ov = random_overrides(nl, u, next);

    let seed_both = |vals: &mut [W3], scratch: &mut SimScratch, next: &mut dyn FnMut() -> u64| {
        for &pi in nl.pis() {
            let w = random_w3(&mut || next());
            vals[pi.index()] = w;
            scratch.set_source(pi, w);
        }
        for ff in nl.ffs() {
            let w = random_w3(&mut || next());
            vals[ff.q().index()] = w;
            scratch.set_source(ff.q(), w);
        }
    };
    let compare = |vals: &[W3], scratch: &SimScratch, path: &str| -> Result<(), Divergence> {
        for net in nl.net_ids() {
            if scratch.value(net) != vals[net.index()] {
                return Err(Divergence {
                    check: "logic",
                    detail: format!(
                        "{path} pass: net `{}` compiled {:?} vs legacy {:?}",
                        nl.net_name(net),
                        scratch.value(net),
                        vals[net.index()],
                    ),
                });
            }
        }
        Ok(())
    };

    let mut checks = 0;
    for _ in 0..3 {
        seed_both(&mut vals, &mut scratch, next);
        legacy.eval(&mut vals);
        sim.eval(&mut scratch);
        compare(&vals, &scratch, "full")?;
        checks += 1;
    }
    seed_both(&mut vals, &mut scratch, next);
    legacy.eval_with(&mut vals, &ov);
    sim.eval_with(&mut scratch, &ov);
    compare(&vals, &scratch, "override")?;
    checks += 1;
    for _ in 0..3 {
        // Reseed a random subset of sources and take the delta path.
        for &pi in nl.pis() {
            if next() & 1 == 0 {
                let w = random_w3(next);
                vals[pi.index()] = w;
                scratch.set_source(pi, w);
            }
        }
        for ff in nl.ffs() {
            if next() & 1 == 0 {
                let w = random_w3(next);
                vals[ff.q().index()] = w;
                scratch.set_source(ff.q(), w);
            }
        }
        legacy.eval_with(&mut vals, &ov);
        sim.eval_delta_with(&mut scratch, &ov);
        compare(&vals, &scratch, "delta")?;
        checks += 1;
    }
    Ok(checks)
}

/// Wide (`W3x4`) compiled kernel vs the scalar compiled kernel, lane by
/// lane, on the full, override, and delta paths. Every net is compared
/// (the compiled kernel stores all of them at both widths), and the
/// dual-rail invariant is validated explicitly after each wide pass.
fn check_logic_wide(
    nl: &Netlist,
    u: &FaultUniverse,
    next: &mut impl FnMut() -> u64,
) -> Result<usize, Divergence> {
    let cc = nl.compiled();
    let sim = CompiledSim::new(cc);
    let ov = random_overrides(nl, u, next);
    let mut wide = SimScratch::new_wide(cc);
    let mut checks = 0;

    // Two full/delta pairs: fault-free, then with overrides (each delta
    // follows a full pass of the same width and override set).
    for (pair, faulty) in [false, true].into_iter().enumerate() {
        for delta in [false, true] {
            for &pi in nl.pis() {
                if !delta || next() & 1 == 0 {
                    wide.set_source_wide(pi, random_w3x4(next));
                }
            }
            for ff in nl.ffs() {
                if !delta || next() & 1 == 0 {
                    wide.set_source_wide(ff.q(), random_w3x4(next));
                }
            }
            match (delta, faulty) {
                (false, false) => sim.eval_wide(&mut wide),
                (false, true) => sim.eval_with_wide(&mut wide, &ov),
                (true, false) => sim.eval_delta_wide(&mut wide),
                (true, true) => sim.eval_delta_with_wide(&mut wide, &ov),
            }
            if let Some(net) = wide.check_dual_rail() {
                return Err(Divergence {
                    check: "logic-wide",
                    detail: format!(
                        "pair {pair} delta {delta}: net `{}` violates zero & one == 0",
                        nl.net_name(net)
                    ),
                });
            }
            for l in 0..LANES {
                let mut scalar = SimScratch::new(cc);
                for &pi in nl.pis() {
                    scalar.set_source(pi, wide.value_wide(pi).lane(l));
                }
                for ff in nl.ffs() {
                    scalar.set_source(ff.q(), wide.value_wide(ff.q()).lane(l));
                }
                if faulty {
                    sim.eval_with(&mut scalar, &ov);
                } else {
                    sim.eval(&mut scalar);
                }
                for net in nl.net_ids() {
                    if wide.value_wide(net).lane(l) != scalar.value(net) {
                        return Err(Divergence {
                            check: "logic-wide",
                            detail: format!(
                                "pair {pair} delta {delta} lane {l}: net `{}` wide {:?} vs \
                                 scalar {:?}",
                                nl.net_name(net),
                                wide.value_wide(net).lane(l),
                                scalar.value(net),
                            ),
                        });
                    }
                }
            }
            checks += 1;
        }
    }
    Ok(checks)
}

/// Cone-fused kernel ([`FusedSim`], scalar and wide) vs the scalar
/// compiled kernel on the nets the fused validity contract keeps live
/// (sources and unit roots — which include every observed net), on the
/// full, override, and delta paths, with an explicit dual-rail check.
fn check_logic_fused(
    nl: &Netlist,
    u: &FaultUniverse,
    next: &mut impl FnMut() -> u64,
) -> Result<usize, Divergence> {
    let cc = nl.compiled();
    let fc = nl.fused();
    let mut fsim = FusedSim::new(cc, fc);
    let sim = CompiledSim::new(cc);
    let ov = random_overrides(nl, u, next);
    let mut live: Vec<NetId> = nl.pis().to_vec();
    live.extend(nl.ffs().iter().map(|ff| ff.q()));
    live.extend((0..fc.num_units()).map(|un| fc.root_net(un)));
    let mut checks = 0;

    // Scalar fused vs scalar compiled: full/delta, fault-free then faulty.
    let mut fast = SimScratch::new(cc);
    for (pair, faulty) in [false, true].into_iter().enumerate() {
        for delta in [false, true] {
            for &pi in nl.pis() {
                if !delta || next() & 1 == 0 {
                    fast.set_source(pi, random_w3(next));
                }
            }
            for ff in nl.ffs() {
                if !delta || next() & 1 == 0 {
                    fast.set_source(ff.q(), random_w3(next));
                }
            }
            match (delta, faulty) {
                (false, false) => fsim.eval(&mut fast),
                (false, true) => fsim.eval_with(&mut fast, &ov),
                (true, false) => fsim.eval_delta(&mut fast),
                (true, true) => fsim.eval_delta_with(&mut fast, &ov),
            }
            if let Some(net) = fast.check_dual_rail() {
                return Err(Divergence {
                    check: "logic-fused",
                    detail: format!(
                        "scalar pair {pair} delta {delta}: net `{}` violates zero & one == 0",
                        nl.net_name(net)
                    ),
                });
            }
            let mut reference = SimScratch::new(cc);
            for &pi in nl.pis() {
                reference.set_source(pi, fast.value(pi));
            }
            for ff in nl.ffs() {
                reference.set_source(ff.q(), fast.value(ff.q()));
            }
            if faulty {
                sim.eval_with(&mut reference, &ov);
            } else {
                sim.eval(&mut reference);
            }
            for &net in &live {
                if fast.value(net) != reference.value(net) {
                    return Err(Divergence {
                        check: "logic-fused",
                        detail: format!(
                            "scalar pair {pair} delta {delta}: net `{}` fused {:?} vs \
                             compiled {:?}",
                            nl.net_name(net),
                            fast.value(net),
                            reference.value(net),
                        ),
                    });
                }
            }
            checks += 1;
        }
    }

    // Wide fused vs scalar compiled, lane by lane: full passes, fault-free
    // then faulty.
    let mut wide = SimScratch::new_wide(cc);
    for faulty in [false, true] {
        for &pi in nl.pis() {
            wide.set_source_wide(pi, random_w3x4(next));
        }
        for ff in nl.ffs() {
            wide.set_source_wide(ff.q(), random_w3x4(next));
        }
        if faulty {
            fsim.eval_with_wide(&mut wide, &ov);
        } else {
            fsim.eval_wide(&mut wide);
        }
        if let Some(net) = wide.check_dual_rail() {
            return Err(Divergence {
                check: "logic-fused",
                detail: format!(
                    "wide faulty {faulty}: net `{}` violates zero & one == 0",
                    nl.net_name(net)
                ),
            });
        }
        for l in 0..LANES {
            let mut scalar = SimScratch::new(cc);
            for &pi in nl.pis() {
                scalar.set_source(pi, wide.value_wide(pi).lane(l));
            }
            for ff in nl.ffs() {
                scalar.set_source(ff.q(), wide.value_wide(ff.q()).lane(l));
            }
            if faulty {
                sim.eval_with(&mut scalar, &ov);
            } else {
                sim.eval(&mut scalar);
            }
            for &net in &live {
                if wide.value_wide(net).lane(l) != scalar.value(net) {
                    return Err(Divergence {
                        check: "logic-fused",
                        detail: format!(
                            "wide faulty {faulty} lane {l}: net `{}` fused {:?} vs \
                             compiled {:?}",
                            nl.net_name(net),
                            wide.value_wide(net).lane(l),
                            scalar.value(net),
                        ),
                    });
                }
            }
        }
        checks += 1;
    }
    Ok(checks)
}

fn first_mismatch(a: &[bool], b: &[bool], faults: &[FaultId]) -> String {
    match a.iter().zip(b).position(|(x, y)| x != y) {
        Some(i) => format!(
            "fault {:?} (index {i}): serial detected={} parallel detected={}",
            faults[i], a[i], b[i]
        ),
        None => format!("lengths differ: {} vs {}", a.len(), b.len()),
    }
}

/// Runs every differential check of one case at the given thread counts.
///
/// # Errors
///
/// Returns the first [`Divergence`] found — any bit of disagreement between
/// two engines that are specified to be equivalent.
pub fn run_case(case: &Case, threads: &[usize]) -> Result<CaseReport, Divergence> {
    let nl = generate(&case.spec).map_err(|e| Divergence {
        check: "synth",
        detail: format!("generator rejected {:?}: {e}", case.spec),
    })?;
    let u = FaultUniverse::full(&nl);
    let mut next = rng(case.data_seed);
    let mut report = CaseReport {
        checks: 0,
        faults: 0,
        nets: nl.num_nets(),
    };

    report.checks += check_logic(&nl, &u, &mut next)?;
    report.checks += check_logic_wide(&nl, &u, &mut next)?;
    report.checks += check_logic_fused(&nl, &u, &mut next)?;

    let faults = sample_faults(&u, case.fault_cap);
    report.faults = faults.len();

    // Combinational detection: serial PPSFP vs the test-sharded parallel
    // front end (which drops faults across partitions), plus the
    // matrix-vs-bitmap consistency check on the fault-sharded path.
    let tests: Vec<CombTest> = (0..8 + case.seq_len * 3)
        .map(|_| {
            CombTest::new(
                (0..nl.num_ffs()).map(|_| random_v3(&mut next)).collect(),
                (0..nl.num_pis()).map(|_| random_v3(&mut next)).collect(),
            )
        })
        .collect();
    let comb_serial = CombFaultSim::new(&nl).detect_all(&tests, &faults, &u);
    for &t in threads {
        let par = ParallelFsim::new(&nl, SimConfig::with_threads(t));
        let got = par.detect_all(&tests, &faults, &u);
        if got != comb_serial {
            return Err(Divergence {
                check: "comb-detect",
                detail: format!(
                    "threads {t}: {}",
                    first_mismatch(&comb_serial, &got, &faults)
                ),
            });
        }
        par.check_matrix_consistency(&tests, &faults, &u)
            .map_err(|m| Divergence {
                check: "matrix",
                detail: format!("threads {t}: {m}"),
            })?;
        report.checks += 2;
    }

    // Sequential detection: serial engine vs the fault-sharded parallel
    // front end.
    let (init, seq) = case_stimuli(case, &nl);
    let seq_serial = SeqFaultSim::new(&nl).detect(&init, &seq, &faults, &u, true);
    for &t in threads {
        let got = ParallelFsim::new(&nl, SimConfig::with_threads(t))
            .detect(&init, &seq, &faults, &u, true);
        if got != seq_serial {
            return Err(Divergence {
                check: "seq-detect",
                detail: format!(
                    "threads {t}: {}",
                    first_mismatch(&seq_serial, &got, &faults)
                ),
            });
        }
        report.checks += 1;
    }

    // Vector omission: serial sweep vs speculative parallel sweeps, on the
    // faults this sequence actually detects.
    let targets: Vec<FaultId> = faults
        .iter()
        .zip(&seq_serial)
        .filter_map(|(&f, &d)| d.then_some(f))
        .collect();
    if seq.len() > 1 && !targets.is_empty() {
        check_omission_differential(
            &nl,
            &u,
            &init,
            &seq,
            &targets,
            true,
            OmissionConfig::default(),
            threads,
        )
        .map_err(|d| Divergence {
            check: "omission",
            detail: d.to_string(),
        })?;
        report.checks += 1;
    }

    Ok(report)
}

/// Settings for a fuzzing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Master seed; case `i` derives from `(seed, i)`.
    pub seed: u64,
    /// Number of cases to run.
    pub iters: usize,
    /// Thread counts the parallel engines are exercised at.
    pub threads: Vec<usize>,
    /// Where to dump reproduction bundles for failing cases (skipped when
    /// `None`).
    pub out_dir: Option<PathBuf>,
    /// Bound on minimizer re-simulations per failing case.
    pub shrink_steps: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            iters: 100,
            threads: vec![2, 3],
            out_dir: None,
            shrink_steps: 64,
        }
    }
}

/// One failing case, minimized and (optionally) dumped to disk.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The case as originally derived.
    pub case: Case,
    /// The smallest case the minimizer found that still diverges.
    pub minimized: Case,
    /// The divergence of the minimized case.
    pub divergence: Divergence,
    /// Where the reproduction bundle was written, if anywhere.
    pub repro_dir: Option<PathBuf>,
}

/// Aggregate result of [`run_fuzz`].
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Cases derived and executed.
    pub cases_run: usize,
    /// Differential comparisons performed across all clean cases.
    pub checks_run: usize,
    /// Every diverging case (empty on a healthy workspace).
    pub failures: Vec<FuzzFailure>,
}

/// Runs `cfg.iters` deterministic cases, minimizing and dumping every
/// failure. Never panics on a divergence — all failures are collected so a
/// single run reports every engine pair that disagrees.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    let _sp = atspeed_trace::span("verify.fuzz");
    let mut out = FuzzOutcome::default();
    for i in 0..cfg.iters {
        let case = Case::from_iteration(cfg.seed, i);
        atspeed_trace::metrics::global()
            .counter("verify/cases")
            .inc();
        match run_case(&case, &cfg.threads) {
            Ok(rep) => {
                out.checks_run += rep.checks;
            }
            Err(div) => {
                atspeed_trace::error!("verify.fuzz", "engines diverged";
                    iteration = i, check = div.check, detail = div.detail);
                atspeed_trace::metrics::global()
                    .counter("verify/divergences")
                    .inc();
                let (minimized, divergence) =
                    crate::shrink::minimize(&case, &cfg.threads, cfg.shrink_steps);
                let repro_dir = cfg.out_dir.as_deref().and_then(|root| {
                    match crate::repro::dump_repro(root, &minimized, &divergence) {
                        Ok(dir) => Some(dir),
                        Err(e) => {
                            atspeed_trace::error!("verify.fuzz", "failed to dump repro";
                                error = e.to_string());
                            None
                        }
                    }
                });
                out.failures.push(FuzzFailure {
                    case,
                    minimized,
                    divergence,
                    repro_dir,
                });
            }
        }
        out.cases_run += 1;
    }
    out
}

/// Aggregate result of [`run_malformed_fuzz`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MalformedOutcome {
    /// Mutated inputs fed to the parsers.
    pub cases_run: usize,
    /// Inputs the parsers rejected with a structured error.
    pub rejected: usize,
    /// Inputs that still parsed (benign mutations happen).
    pub accepted: usize,
}

/// Feeds `iters` deterministically mutated inputs into the two parsing
/// surfaces a served request reaches — `.bench` netlist parsing
/// ([`bench_fmt::parse`]) and the stimuli wire codec
/// ([`crate::repro::decode_stimuli`]) — and asserts, by returning at all,
/// that no mutation panics, aborts, or wedges a parser. Every malformed
/// input must surface as an `Err`; benign mutations that still parse are
/// counted, not failed.
///
/// This is the client-cannot-crash-the-server guarantee at the payload
/// layer; the serve crate's own tests cover the framing layer.
pub fn run_malformed_fuzz(seed: u64, iters: usize) -> MalformedOutcome {
    let _sp = atspeed_trace::span("verify.malformed");
    let mut next = rng(seed ^ 0xBAD_F00D);
    let case = Case::from_iteration(seed, 0);
    let nl = generate(&case.spec).expect("derived specs generate");
    let bench = atspeed_circuit::bench_fmt::write(&nl);
    let (init, seq) = case_stimuli(&case, &nl);
    let vectors = crate::repro::encode_stimuli(&init, &seq);

    let mutate = |text: &str, next: &mut dyn FnMut() -> u64| -> String {
        let mut bytes = text.as_bytes().to_vec();
        match next() % 6 {
            // Truncate mid-declaration.
            0 => bytes.truncate((next() as usize) % (bytes.len() + 1)),
            // Flip one byte to arbitrary ASCII (including NUL and DEL).
            1 if !bytes.is_empty() => {
                let i = (next() as usize) % bytes.len();
                bytes[i] = (next() & 0x7f) as u8;
            }
            // Splice in a garbage line.
            2 => {
                let i = (next() as usize) % (bytes.len() + 1);
                let junk: Vec<u8> = (0..1 + next() % 40)
                    .map(|_| (next() & 0x7f) as u8)
                    .collect();
                bytes.splice(i..i, junk);
            }
            // Duplicate a random chunk (redefinitions, repeated vectors).
            3 if bytes.len() > 1 => {
                let a = (next() as usize) % bytes.len();
                let b = a + (next() as usize) % (bytes.len() - a);
                let chunk = bytes[a..b].to_vec();
                bytes.extend(chunk);
            }
            // Replace wholesale with short binary junk.
            4 => bytes = (0..next() % 64).map(|_| next() as u8).collect(),
            // Blow one line up to a few kilobytes (bounded-read probe).
            _ => {
                let c = [b'0', b'1', b'x', b'('][(next() % 4) as usize];
                bytes.extend(std::iter::repeat_n(c, 4096));
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    };

    let mut out = MalformedOutcome::default();
    for i in 0..iters {
        let (parsed, decoded) = if i % 2 == 0 {
            let text = mutate(&bench, &mut next);
            (
                atspeed_circuit::bench_fmt::parse("malformed", &text).is_ok(),
                crate::repro::decode_stimuli(&vectors, nl.num_ffs(), nl.num_pis()).is_ok(),
            )
        } else {
            let text = mutate(&vectors, &mut next);
            (
                true,
                crate::repro::decode_stimuli(&text, nl.num_ffs(), nl.num_pis()).is_ok(),
            )
        };
        out.cases_run += 1;
        if parsed && decoded {
            out.accepted += 1;
        } else {
            out.rejected += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_derivation_is_deterministic_and_varied() {
        let a = Case::from_iteration(7, 3);
        let b = Case::from_iteration(7, 3);
        assert_eq!(a, b);
        assert!(a.spec.is_valid());
        let c = Case::from_iteration(7, 4);
        assert_ne!(a, c, "different iterations give different cases");
    }

    #[test]
    fn stimuli_match_circuit_interface() {
        let case = Case::from_iteration(11, 0);
        let nl = generate(&case.spec).unwrap();
        let (init, seq) = case_stimuli(&case, &nl);
        assert_eq!(init.len(), nl.num_ffs());
        assert_eq!(seq.len(), case.seq_len);
        assert_eq!(seq.vector(0).len(), nl.num_pis());
        // Same case, same stimuli.
        let (init2, seq2) = case_stimuli(&case, &nl);
        assert_eq!(init, init2);
        assert_eq!(seq, seq2);
    }

    #[test]
    fn small_batch_runs_clean() {
        let outcome = run_fuzz(&FuzzConfig {
            seed: 0xF00D,
            iters: 4,
            threads: vec![2],
            ..FuzzConfig::default()
        });
        assert_eq!(outcome.cases_run, 4);
        assert!(outcome.checks_run > 0);
        assert!(
            outcome.failures.is_empty(),
            "engines diverged: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn malformed_inputs_reject_without_panicking() {
        let out = run_malformed_fuzz(0xC0FFEE, 200);
        assert_eq!(out.cases_run, 200);
        assert_eq!(out.rejected + out.accepted, 200);
        assert!(
            out.rejected > 0,
            "mutations this aggressive must produce rejects: {out:?}"
        );
    }

    #[test]
    fn run_case_reports_work() {
        let case = Case::from_iteration(1, 0);
        let rep = run_case(&case, &[2]).expect("engines agree");
        assert!(rep.checks >= 9, "logic(7) + comb(2) at least: {rep:?}");
        assert!(rep.faults > 0);
        assert!(rep.nets > 0);
    }
}
