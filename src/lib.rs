//! # atspeed
//!
//! A reproduction of **I. Pomeranz and S. M. Reddy, "An Approach to Test
//! Compaction for Scan Circuits that Enhances At-Speed Testing" (DAC 2001)**,
//! together with every substrate the paper depends on, implemented from
//! scratch in Rust:
//!
//! - [`circuit`] — gate-level netlists, the ISCAS-89 `.bench` format, and a
//!   deterministic synthetic benchmark catalog;
//! - [`sim`] — bit-parallel 3-valued logic simulation and stuck-at fault
//!   simulation (combinational PPSFP and sequential parallel-fault);
//! - [`atpg`] — combinational ATPG (PODEM) and sequential test-sequence
//!   generators standing in for STRATEGATE and PROPTEST;
//! - [`core`] — the paper's four-phase compaction procedure, the static
//!   test-combining compaction of \[4\], a dynamic-compaction baseline in the
//!   spirit of \[2,3\], and the clock-cycle cost model;
//! - [`trace`] — workspace telemetry: hierarchical spans with Chrome
//!   trace-event export, a counter/gauge/histogram registry, and leveled
//!   structured JSONL logs.
//!
//! This facade crate re-exports the four member crates under stable names.
//! See the workspace `README.md` for a tour and `DESIGN.md` for the
//! paper-to-module map.
//!
//! # Quickstart
//!
//! ```
//! use atspeed::circuit::bench_fmt::s27;
//! use atspeed::core::{Pipeline, T0Source};
//!
//! let netlist = s27();
//! let result = Pipeline::new(&netlist)
//!     .t0_source(T0Source::Directed { max_len: 64 })
//!     .seed(7)
//!     .run()
//!     .expect("pipeline runs on s27");
//! assert!(result.final_detected >= result.tau_seq_detected);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use atspeed_atpg as atpg;
pub use atspeed_circuit as circuit;
pub use atspeed_core as core;
pub use atspeed_sim as sim;
pub use atspeed_trace as trace;
