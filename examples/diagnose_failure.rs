//! Fault diagnosis demo: generate a test set, inject a "manufacturing
//! defect" (a random stuck-at fault), collect the tester's pass/fail log,
//! and localize the defect by signature matching.
//!
//! ```text
//! cargo run --release --example diagnose_failure [circuit]
//! ```

use atspeed::atpg::comb_tset::{self, CombTsetConfig};
use atspeed::circuit::catalog;
use atspeed::core::diagnose::{diagnose, signatures};
use atspeed::core::TestSet;
use atspeed::sim::fault::{FaultId, FaultUniverse};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s298".to_owned());
    let nl = catalog::by_name(&name)
        .expect("circuit in the paper's catalog")
        .instantiate();
    let universe = FaultUniverse::full(&nl);
    let candidates: Vec<FaultId> = universe.representatives().to_vec();
    let c = comb_tset::generate(&nl, &universe, &CombTsetConfig::default())
        .expect("C generation succeeds")
        .tests;
    let set = TestSet::from_comb_tests(&c);

    // Pretend one fault is the real defect; its signature is what the
    // tester would log.
    let defect = candidates[candidates.len() / 3];
    let sigs = signatures(&nl, &universe, &set, &candidates);
    let observed = sigs[candidates.len() / 3].clone();
    let failing = observed.iter().filter(|&&f| f).count();
    println!(
        "{name}: injected defect `{}`; the part fails {}/{} tests",
        universe.fault(defect).describe(&nl),
        failing,
        set.len()
    );

    let ranked = diagnose(&nl, &universe, &set, &candidates, &observed);
    let exact: Vec<_> = ranked.iter().take_while(|c| c.is_exact()).collect();
    println!(
        "diagnosis: {} exact candidate(s) out of {} faults",
        exact.len(),
        candidates.len()
    );
    for (i, cand) in exact.iter().take(5).enumerate() {
        println!(
            "  #{}: {}{}",
            i + 1,
            universe.fault(cand.fault).describe(&nl),
            if cand.fault == defect {
                "   <-- injected"
            } else {
                ""
            }
        );
    }
    assert!(
        exact.iter().any(|c| c.fault == defect),
        "the injected defect must be among the exact matches"
    );
    println!("(remaining exact candidates are indistinguishable under this test set)");
}
