//! Bring your own netlist: parse an ISCAS-89 `.bench` file (from a path or
//! the embedded s27 text) and run the compaction procedure on it.
//!
//! ```text
//! cargo run --release --example custom_circuit [path/to/circuit.bench]
//! ```
//!
//! This is the path for reproducing on the real ISCAS-89/ITC-99 netlists,
//! which are not bundled with this repository.

use atspeed::circuit::bench_fmt;
use atspeed::circuit::stats::CircuitStats;
use atspeed::core::{Pipeline, T0Source};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)?;
            let name = std::path::Path::new(&path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("custom")
                .to_owned();
            bench_fmt::parse(&name, &text)?
        }
        None => {
            eprintln!("no path given; using the embedded s27 fixture");
            bench_fmt::s27()
        }
    };

    println!("{}", CircuitStats::of(&netlist));

    let result = Pipeline::new(&netlist)
        .t0_source(T0Source::Directed { max_len: 512 })
        .seed(1)
        .run()?;

    println!(
        "tau_seq: {} vectors detecting {}/{} faults; {} top-up tests",
        result.tau_seq_len, result.tau_seq_detected, result.total_faults, result.added_tests
    );
    println!(
        "test application time: {} cycles initial, {} after compaction",
        result.init_cycles, result.comp_cycles
    );

    // Round-trip demonstration: write the netlist back out as .bench.
    let bench_text = bench_fmt::write(&netlist);
    println!(
        "(netlist round-trips through the .bench writer: {} lines)",
        bench_text.lines().count()
    );
    Ok(())
}
