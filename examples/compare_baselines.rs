//! Compares the proposed procedure against the paper's baselines on a few
//! catalog circuits: the static compaction of [4] (initial and compacted)
//! and the dynamic-compaction scheduler in the spirit of [2,3].
//!
//! ```text
//! cargo run --release --example compare_baselines [circuit ...]
//! ```

use atspeed::circuit::catalog;
use atspeed::core::dynamic::{dynamic_schedule, DynamicConfig};
use atspeed::core::phase4::baseline4;
use atspeed::core::{Pipeline, T0Source};
use atspeed::sim::fault::FaultUniverse;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        vec!["s298".into(), "b06".into(), "b10".into()]
    } else {
        args
    };

    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "circuit", "[2,3]", "[4]init", "[4]comp", "prop.init", "prop.comp"
    );
    for name in names {
        let info = catalog::by_name(&name).expect("circuit in catalog");
        let nl = info.instantiate();
        let universe = FaultUniverse::full(&nl);
        let targets = universe.representatives().to_vec();

        let proposed = Pipeline::new(&nl)
            .t0_source(T0Source::Directed { max_len: 512 })
            .seed(2001)
            .run()
            .expect("pipeline runs");
        let b4 = baseline4(&nl, &universe, &proposed.comb_tests, &targets);
        let dynamic = dynamic_schedule(
            &nl,
            &universe,
            &proposed.comb_tests,
            &targets,
            &DynamicConfig::default(),
        );

        let n_sv = nl.num_ffs();
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            name,
            dynamic.cycles,
            b4.initial.clock_cycles(n_sv),
            b4.compacted.clock_cycles(n_sv),
            proposed.init_cycles,
            proposed.comp_cycles
        );
    }
    println!();
    println!("Lower is better: the proposed initial set usually beats [4]'s");
    println!("initial set, and often its compacted set, while carrying far");
    println!("longer at-speed input sequences.");
}
