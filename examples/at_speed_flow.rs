//! The full four-phase flow on a catalog benchmark, narrated phase by
//! phase using the lower-level APIs (rather than the one-call [`Pipeline`]).
//!
//! ```text
//! cargo run --release --example at_speed_flow [circuit]
//! ```
//!
//! [`Pipeline`]: atspeed::core::Pipeline

use atspeed::atpg::comb_tset::{self, CombTsetConfig};
use atspeed::atpg::{directed_t0, DirectedConfig};
use atspeed::circuit::catalog;
use atspeed::core::iterate::{build_tau_seq, IterateConfig};
use atspeed::core::phase3::top_up;
use atspeed::core::phase4::combine_tests;
use atspeed::core::{ScanTest, TestSet};
use atspeed::sim::fault::FaultUniverse;
use atspeed::sim::{SeqFaultSim, V3};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s298".to_owned());
    let info = catalog::by_name(&name).expect("circuit in the paper's catalog");
    let nl = info.instantiate();
    let n_sv = nl.num_ffs();
    println!(
        "== {} ({} FFs, {} gates) ==",
        nl.name(),
        n_sv,
        nl.num_gates()
    );

    let universe = FaultUniverse::full(&nl);
    let targets = universe.representatives().to_vec();
    println!(
        "fault universe: {} total, {} collapsed",
        universe.num_faults(),
        universe.num_collapsed()
    );

    // Substrate 1: the combinational test set C.
    let c = comb_tset::generate(&nl, &universe, &CombTsetConfig::default())
        .expect("C generation succeeds");
    println!(
        "combinational test set C: {} tests, {} detected, {} untestable, {} aborted",
        c.tests.len(),
        c.detected,
        c.untestable.len(),
        c.aborted.len()
    );

    // Substrate 2: the scan-less sequence T0 (STRATEGATE stand-in).
    let t0 = directed_t0(&nl, &universe, &targets, &DirectedConfig::default());
    let mut fsim = SeqFaultSim::new(&nl);
    let f0_count = fsim
        .detect(&vec![V3::X; n_sv], &t0, &targets, &universe, false)
        .iter()
        .filter(|&&d| d)
        .count();
    println!(
        "T0: {} vectors, detects {} faults without scan",
        t0.len(),
        f0_count
    );

    // Phases 1-2, iterated.
    let tau = build_tau_seq(
        &nl,
        &universe,
        &t0,
        &c.tests,
        &targets,
        IterateConfig::default(),
    )
    .expect("candidates available");
    println!(
        "Phases 1-2 ({} iterations): tau_seq = (SI, {} vectors), detects {}",
        tau.iterations,
        tau.test.len(),
        tau.detected.len()
    );

    // Phase 3.
    let undetected: Vec<_> = targets
        .iter()
        .filter(|f| !tau.detected.contains(f))
        .copied()
        .collect();
    let p3 = top_up(&nl, &universe, &c.tests, &undetected);
    println!(
        "Phase 3: {} single-vector tests added, {} faults uncoverable",
        p3.added.len(),
        p3.still_undetected.len()
    );

    // Phase 4.
    let mut tests: Vec<ScanTest> = vec![tau.test.clone()];
    tests.extend(p3.added.iter().cloned());
    let initial = TestSet::from_tests(tests);
    let covered: Vec<_> = targets
        .iter()
        .filter(|f| !p3.still_undetected.contains(f))
        .copied()
        .collect();
    let (compacted, stats) = combine_tests(&nl, &universe, &initial, &covered);
    println!(
        "Phase 4: {} combinations in {} rounds; {} -> {} tests",
        stats.combinations,
        stats.rounds,
        initial.len(),
        compacted.len()
    );
    println!(
        "clock cycles: initial {} -> compacted {}",
        initial.clock_cycles(n_sv),
        compacted.clock_cycles(n_sv)
    );
    if let (Some(a), Some(b)) = (initial.at_speed_stats(), compacted.at_speed_stats()) {
        println!("at-speed lengths: initial {a}, compacted {b}");
    }
}
