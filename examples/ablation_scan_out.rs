//! Ablation of the paper's Step 3 design choice: the scan-out time rule.
//!
//! Section 3.1 of the paper discusses two ways to pick the scan-out time
//! unit: `i₀` (the earliest prefix that loses no detected fault — their
//! choice) and `i₁` (the prefix maximizing total detections). The paper
//! reports that `i₁` "results in input sequences that are significantly
//! longer, while the increase in the number of detected faults is marginal".
//! This example reproduces that comparison.
//!
//! ```text
//! cargo run --release --example ablation_scan_out [circuit]
//! ```

use atspeed::atpg::comb_tset::{self, CombTsetConfig};
use atspeed::atpg::{directed_t0, DirectedConfig};
use atspeed::circuit::catalog;
use atspeed::core::iterate::{build_tau_seq, IterateConfig};
use atspeed::core::{Phase1Config, ScanOutRule};
use atspeed::sim::fault::FaultUniverse;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s298".to_owned());
    let nl = catalog::by_name(&name)
        .expect("circuit in the paper's catalog")
        .instantiate();
    let universe = FaultUniverse::full(&nl);
    let targets = universe.representatives().to_vec();
    let c = comb_tset::generate(&nl, &universe, &CombTsetConfig::default())
        .expect("C generation succeeds")
        .tests;
    let t0 = directed_t0(
        &nl,
        &universe,
        &targets,
        &DirectedConfig {
            max_len: 512,
            ..DirectedConfig::default()
        },
    );

    println!("{name}: |F| = {}, L(T0) = {}", targets.len(), t0.len());
    println!(
        "{:<22} {:>10} {:>10}",
        "scan-out rule", "L(T_seq)", "detected"
    );
    for (label, rule) in [
        ("i0 (earliest, paper)", ScanOutRule::EarliestComplete),
        ("i1 (max detection)", ScanOutRule::MaxDetectEarliest),
    ] {
        let cfg = IterateConfig {
            phase1: Phase1Config {
                scan_out_rule: rule,
                ..IterateConfig::default().phase1
            },
            ..IterateConfig::default()
        };
        let r =
            build_tau_seq(&nl, &universe, &t0, &c, &targets, cfg).expect("candidates available");
        println!(
            "{:<22} {:>10} {:>10}",
            label,
            r.test.len(),
            r.detected.len()
        );
    }
    println!();
    println!("The paper chose i0: i1 trades a marginal detection gain for");
    println!("significantly longer sequences (Section 3.1).");
}
