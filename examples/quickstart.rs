//! Quickstart: run the whole compaction procedure on the embedded s27
//! benchmark and print what each phase produced.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use atspeed::circuit::bench_fmt::s27;
use atspeed::core::{Pipeline, T0Source};

fn main() {
    let netlist = s27();
    println!(
        "circuit {}: {} PIs, {} POs, {} FFs, {} gates",
        netlist.name(),
        netlist.num_pis(),
        netlist.num_pos(),
        netlist.num_ffs(),
        netlist.num_gates()
    );

    let result = Pipeline::new(&netlist)
        .t0_source(T0Source::Directed { max_len: 64 })
        .seed(7)
        .run()
        .expect("pipeline runs on s27");

    println!("collapsed faults            : {}", result.total_faults);
    println!("combinational test set |C|  : {}", result.num_comb_tests);
    println!(
        "T0 (no scan)                : {} vectors, {} faults detected",
        result.t0_len, result.t0_detected
    );
    println!(
        "tau_seq after Phases 1-2    : {} vectors, {} faults detected",
        result.tau_seq_len, result.tau_seq_detected
    );
    println!("tests added in Phase 3      : {}", result.added_tests);
    println!(
        "final coverage              : {}/{} ({:.1}%)",
        result.final_detected,
        result.total_faults,
        100.0 * result.coverage()
    );
    println!(
        "clock cycles (init -> comp) : {} -> {}",
        result.init_cycles, result.comp_cycles
    );
    if let Some(st) = result.at_speed_comp {
        println!("at-speed sequence lengths   : {st}");
    }
}
