//! Partial-scan sweep (the paper's stated extension): how fault coverage
//! and test application time trade off as the scan chain shrinks.
//!
//! ```text
//! cargo run --release --example partial_scan [circuit]
//! ```

use atspeed::atpg::comb_tset::{self, CombTsetConfig};
use atspeed::circuit::catalog;
use atspeed::core::{PartialScan, TestSet};
use atspeed::sim::fault::FaultUniverse;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s298".to_owned());
    let nl = catalog::by_name(&name)
        .expect("circuit in the paper's catalog")
        .instantiate();
    let universe = FaultUniverse::full(&nl);
    let targets = universe.representatives().to_vec();
    let c = comb_tset::generate(&nl, &universe, &CombTsetConfig::default())
        .expect("C generation succeeds")
        .tests;
    let set = TestSet::from_comb_tests(&c);
    let n = nl.num_ffs();

    println!(
        "{name}: {} FFs, {} collapsed faults, {} single-vector tests",
        n,
        targets.len(),
        set.len()
    );
    println!(
        "{:>10} {:>8} {:>10} {:>10}",
        "chain", "cycles", "detected", "coverage"
    );
    for percent in [100usize, 75, 50, 25, 0] {
        let k = (n * percent).div_ceil(100);
        let pscan = PartialScan::first_k(n, k);
        let cycles = pscan.clock_cycles(&set);
        let detected = pscan.count_detected(&nl, &universe, &set, &targets);
        println!(
            "{:>7}/{:<2} {:>8} {:>10} {:>9.1}%",
            k,
            n,
            cycles,
            detected,
            100.0 * detected as f64 / targets.len() as f64
        );
    }
    println!();
    println!("Shorter chains cut the (k+1)*N_chain scan cost but lose the");
    println!("controllability/observability of the dropped flip-flops.");
}
