//! Quantifies the paper's at-speed claim: the proposed procedure's long
//! primary-input sequences detect transition-delay faults that the
//! single-vector test sets of the [4] baseline cannot (a length-1 test has
//! no launch/capture cycle pair).
//!
//! ```text
//! cargo run --release --example delay_defects [circuit]
//! ```

use atspeed::circuit::catalog;
use atspeed::core::phase4::baseline4;
use atspeed::core::{transition_coverage, Pipeline, T0Source};
use atspeed::sim::fault::FaultUniverse;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s298".to_owned());
    let nl = catalog::by_name(&name)
        .expect("circuit in the paper's catalog")
        .instantiate();
    let universe = FaultUniverse::full(&nl);
    let targets = universe.representatives().to_vec();

    let proposed = Pipeline::new(&nl)
        .t0_source(T0Source::Directed { max_len: 512 })
        .seed(2001)
        .run()
        .expect("pipeline runs");
    let b4 = baseline4(&nl, &universe, &proposed.comb_tests, &targets);

    println!("{name}: transition-delay fault coverage of the compacted sets");
    println!(
        "{:<26} {:>9} {:>10} {:>10}",
        "test set", "pairs", "detected", "coverage"
    );
    for (label, set) in [
        ("[4] initial (1-vector)", &b4.initial),
        ("[4] compacted", &b4.compacted),
        ("proposed initial", &proposed.initial_set),
        ("proposed compacted", &proposed.compacted_set),
    ] {
        let cov = transition_coverage(&nl, set);
        println!(
            "{:<26} {:>9} {:>10} {:>9.1}%",
            label,
            cov.at_speed_pairs,
            cov.detected,
            100.0 * cov.fraction()
        );
    }
    println!();
    println!("Every at-speed pair is two back-to-back functional cycles; a");
    println!("single-vector scan test has none, so its transition coverage");
    println!("is zero by construction — the paper's motivation, measured.");
}
