#!/usr/bin/env python3
"""Sanity-check a run report produced by the `report` binary.

Usage:

    check_report.py REPORT.html [HISTORY.jsonl]

Asserts the HTML is a single self-contained document — no external
references of any kind (http(s)/protocol-relative URLs, scripts, link
tags, CSS imports) — and that the expected sections render. When a
history JSONL path is given, every line must be a schema-versioned run
record with the mandatory fields, and the report must render a trend
whenever two or more comparable records exist.
"""

import json
import re
import sys

HISTORY_SCHEMA = 1
HISTORY_FIELDS = {
    "schema": int,
    "unix_time_s": (int, float),
    "git_sha": str,
    "command": str,
    "config_fingerprint": str,
    "wall_us": (int, float),
    "peak_rss_bytes": (int, float),
    "derived": dict,
}

# Anything that would make a browser touch the network or local files.
EXTERNAL_REF_PATTERNS = [
    r"https?://",
    r'(?:src|href)\s*=\s*["\'](?!#)',
    r"<script\b",
    r"<link\b",
    r"<iframe\b",
    r"@import",
    r"url\s*\(",
]


def check_html(path):
    with open(path, encoding="utf-8") as f:
        html = f.read()
    if not html.lstrip().lower().startswith("<!doctype html>"):
        sys.exit("error: report is not an HTML document")
    for pat in EXTERNAL_REF_PATTERNS:
        m = re.search(pat, html, re.IGNORECASE)
        if m:
            start = max(0, m.start() - 40)
            snippet = html[start:m.end() + 40].replace("\n", " ")
            sys.exit(f"error: external reference {pat!r} in report: ...{snippet}...")
    sections = re.findall(r"<h2>([^<]+)</h2>", html)
    if not sections:
        sys.exit("error: report has no sections")
    return html, sections


def check_history(path):
    records = []
    with open(path, encoding="utf-8") as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"error: history line {i} is not JSON: {e}")
            for field, ty in HISTORY_FIELDS.items():
                if not isinstance(rec.get(field), ty):
                    sys.exit(f"error: history line {i}: bad or missing `{field}`: "
                             f"{rec.get(field)!r}")
            if rec["schema"] != HISTORY_SCHEMA:
                sys.exit(f"error: history line {i}: schema {rec['schema']} != "
                         f"{HISTORY_SCHEMA}")
            for k, v in rec["derived"].items():
                if not isinstance(v, (int, float)):
                    sys.exit(f"error: history line {i}: derived.{k} is not a number")
            records.append(rec)
    if not records:
        sys.exit(f"error: {path} holds no history records")
    return records


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(f"usage: {sys.argv[0]} REPORT.html [HISTORY.jsonl]")
    html, sections = check_html(sys.argv[1])

    msg = f"OK: self-contained report with sections {sections}"
    if len(sys.argv) == 3:
        records = check_history(sys.argv[2])
        fingerprints = [r["config_fingerprint"] for r in records]
        comparable = max(fingerprints.count(fp) for fp in set(fingerprints))
        if comparable >= 2 and "Trends" not in sections:
            sys.exit(f"error: {comparable} comparable history records but the "
                     f"report renders no Trends section")
        msg += (f"; {len(records)} schema-v{HISTORY_SCHEMA} history records "
                f"({comparable} comparable)")
    print(msg)


if __name__ == "__main__":
    main()
