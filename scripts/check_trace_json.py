#!/usr/bin/env python3
"""Sanity-check a Chrome trace-event JSON produced by `--trace`.

Usage:

    check_trace_json.py TRACE.json

Asserts the file parses, contains a non-empty `traceEvents` array, every
event carries the expected fields, and B/E events balance per thread (a
stack-discipline replay, so nesting is also validated).
"""

import json
import sys
from collections import defaultdict


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} TRACE.json")
    path = sys.argv[1]
    with open(path, encoding="utf-8") as f:
        trace = json.load(f)

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        sys.exit("error: traceEvents missing or empty")

    stacks = defaultdict(list)
    for e in events:
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in e:
                sys.exit(f"error: event missing `{field}`: {e}")
        if e["ph"] == "B":
            stacks[e["tid"]].append(e["name"])
        elif e["ph"] == "E":
            if not stacks[e["tid"]]:
                sys.exit(f"error: unbalanced E on tid {e['tid']}")
            stacks[e["tid"]].pop()
        else:
            sys.exit(f"error: unexpected phase {e['ph']!r}")
    unbalanced = {tid: s for tid, s in stacks.items() if s}
    if unbalanced:
        sys.exit(f"error: unclosed spans: {unbalanced}")

    tids = {e["tid"] for e in events}
    print(f"OK: {len(events)} events across {len(tids)} thread tracks, "
          f"all spans balanced")


if __name__ == "__main__":
    main()
