#!/usr/bin/env python3
"""Compare a `tables --metrics-json` output against a committed baseline.

Usage:

    check_metrics_baseline.py CURRENT.json BASELINE.json [--max-regression 0.25]

Validates that CURRENT.json is well-formed telemetry output (top-level
`counters`, `gauges`, `histograms`, `derived` objects) and fails when the
headline `derived.gate_evals_per_sec` figure regressed by more than
`--max-regression` (default 25%) relative to the baseline. Improvements
never fail; print-only fields (wall time, imbalance) are reported for
context but not gated, since they vary with machine load.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--max-regression", type=float, default=0.25)
    args = ap.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    for key in ("counters", "gauges", "histograms", "derived"):
        if key not in current or not isinstance(current[key], dict):
            sys.exit(f"error: {args.current} is missing the `{key}` object")

    cur = current["derived"].get("gate_evals_per_sec")
    base = baseline["derived"].get("gate_evals_per_sec")
    if not isinstance(cur, (int, float)) or cur <= 0:
        sys.exit(f"error: bad current gate_evals_per_sec: {cur!r}")
    if not isinstance(base, (int, float)) or base <= 0:
        sys.exit(f"error: bad baseline gate_evals_per_sec: {base!r}")

    floor = base * (1.0 - args.max_regression)
    ratio = cur / base
    print(f"gate_evals_per_sec: current {cur:.0f}, baseline {base:.0f} "
          f"(ratio {ratio:.2f}, floor {floor:.0f})")
    for field in ("gate_evals_total", "wall_us_total", "partition_imbalance"):
        c = current["derived"].get(field)
        b = baseline["derived"].get(field)
        print(f"{field}: current {c}, baseline {b}")

    if cur < floor:
        sys.exit(
            f"FAIL: gate_evals_per_sec regressed more than "
            f"{args.max_regression:.0%} (ratio {ratio:.2f})"
        )
    print("OK: throughput within the allowed regression envelope")


if __name__ == "__main__":
    main()
