#!/usr/bin/env python3
"""Compare a `tables --metrics-json` output against a committed baseline.

Usage:

    check_metrics_baseline.py CURRENT.json BASELINE.json [--max-regression 0.25]

Validates that CURRENT.json is well-formed telemetry output (top-level
`counters`, `gauges`, `histograms`, `derived` objects) and fails when a
gated headline figure (`derived.gate_evals_per_sec`, and
`derived.omission_attempts_per_sec` when the baseline records it)
regressed by more than `--max-regression` (default 25%) relative to the
baseline. Improvements never fail.

Resource ceilings are gated the other way around (lower is better):
`derived.peak_rss_bytes` and the `stress/wall_us` gauge fail when the
current value exceeds `baseline * (1 + max_regression)` — but only when
the baseline records them (> 0), so `tables` baselines without a stress
run are unaffected. Remaining print-only fields (imbalance, totals) are
reported for context but not gated, since they vary with machine load.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--max-regression", type=float, default=0.25)
    args = ap.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    for key in ("counters", "gauges", "histograms", "derived"):
        if key not in current or not isinstance(current[key], dict):
            sys.exit(f"error: {args.current} is missing the `{key}` object")

    # gate_evals_per_sec is always gated; omission_attempts_per_sec only
    # once the baseline records it (older baselines predate the metric).
    gated = ["gate_evals_per_sec"]
    if isinstance(baseline["derived"].get("omission_attempts_per_sec"),
                  (int, float)) and \
            baseline["derived"]["omission_attempts_per_sec"] > 0:
        gated.append("omission_attempts_per_sec")

    failures = []
    for metric in gated:
        cur = current["derived"].get(metric)
        base = baseline["derived"].get(metric)
        if not isinstance(cur, (int, float)) or cur <= 0:
            sys.exit(f"error: bad current {metric}: {cur!r}")
        if not isinstance(base, (int, float)) or base <= 0:
            sys.exit(f"error: bad baseline {metric}: {base!r}")
        floor = base * (1.0 - args.max_regression)
        ratio = cur / base
        print(f"{metric}: current {cur:.0f}, baseline {base:.0f} "
              f"(ratio {ratio:.2f}, floor {floor:.0f})")
        if cur < floor:
            failures.append(f"{metric} regressed more than "
                            f"{args.max_regression:.0%} (ratio {ratio:.2f})")

    # Resource ceilings: lower is better, gated only once the baseline
    # records them (tables baselines predate the stress metrics).
    def lookup(doc, section, key):
        value = doc.get(section, {}).get(key)
        return value if isinstance(value, (int, float)) else None

    ceilings = [("derived", "peak_rss_bytes"), ("gauges", "stress/wall_us")]
    for section, metric in ceilings:
        base = lookup(baseline, section, metric)
        if base is None or base <= 0:
            continue
        cur = lookup(current, section, metric)
        if cur is None or cur <= 0:
            sys.exit(f"error: bad current {section}.{metric}: {cur!r}")
        ceiling = base * (1.0 + args.max_regression)
        ratio = cur / base
        print(f"{section}.{metric}: current {cur:.0f}, baseline {base:.0f} "
              f"(ratio {ratio:.2f}, ceiling {ceiling:.0f})")
        if cur > ceiling:
            failures.append(f"{section}.{metric} grew more than "
                            f"{args.max_regression:.0%} (ratio {ratio:.2f})")

    for field in ("gate_evals_total", "wall_us_total", "partition_imbalance",
                  "omission_attempts_total", "omission_wall_us"):
        c = current["derived"].get(field)
        b = baseline["derived"].get(field)
        print(f"{field}: current {c}, baseline {b}")

    if failures:
        sys.exit("FAIL: " + "; ".join(failures))
    print("OK: metrics within the allowed regression envelope")


if __name__ == "__main__":
    main()
