#!/usr/bin/env python3
"""Compare a `tables --metrics-json` output against a committed baseline.

Usage:

    check_metrics_baseline.py CURRENT.json BASELINE.json [--max-regression 0.25]

Validates that CURRENT.json is well-formed telemetry output (top-level
`counters`, `gauges`, `histograms`, `derived` objects) and fails when a
gated headline figure (`derived.gate_evals_per_sec`, and
`derived.omission_attempts_per_sec` when the baseline records it)
regressed by more than `--max-regression` (default 25%) relative to the
baseline. Improvements never fail.

Resource ceilings are gated the other way around (lower is better):
`derived.peak_rss_bytes` and the `stress/wall_us` gauge fail when the
current value exceeds `baseline * (1 + max_regression)` — but only when
the baseline records them (> 0), so `tables` baselines without a stress
run are unaffected. Remaining print-only fields (imbalance, totals) are
reported for context but not gated, since they vary with machine load.

With `--kernels target/kernels.json`, also gates the wide-kernel speedup:
for every measured circuit, the `wide_fused` kernel's `gate_evals_per_sec`
must be at least `--wide-multiple` (default 4.0) times the scalar
`compiled` kernel's. Both numbers come from the same run's interleaved
measurement windows, so the ratio is machine-load independent even though
the absolute throughputs are not.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="?",
                    help="telemetry metrics JSON (omit for --kernels-only "
                         "invocations)")
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("--max-regression", type=float, default=0.25)
    ap.add_argument("--kernels", metavar="KERNELS_JSON",
                    help="per-kernel bench summary; gates wide_fused >= "
                         "--wide-multiple x compiled per circuit")
    ap.add_argument("--wide-multiple", type=float, default=4.0)
    args = ap.parse_args()

    if args.current and not args.baseline:
        ap.error("BASELINE is required when CURRENT is given")
    if not args.current and not args.kernels:
        ap.error("nothing to gate: pass CURRENT BASELINE and/or --kernels")

    failures = []
    if args.current:
        current = load(args.current)
        baseline = load(args.baseline)

        for key in ("counters", "gauges", "histograms", "derived"):
            if key not in current or not isinstance(current[key], dict):
                sys.exit(f"error: {args.current} is missing the `{key}` "
                         f"object")

        # gate_evals_per_sec is always gated; omission_attempts_per_sec
        # only once the baseline records it (older baselines predate the
        # metric).
        gated = ["gate_evals_per_sec"]
        if isinstance(baseline["derived"].get("omission_attempts_per_sec"),
                      (int, float)) and \
                baseline["derived"]["omission_attempts_per_sec"] > 0:
            gated.append("omission_attempts_per_sec")

        for metric in gated:
            cur = current["derived"].get(metric)
            base = baseline["derived"].get(metric)
            if not isinstance(cur, (int, float)) or cur <= 0:
                sys.exit(f"error: bad current {metric}: {cur!r}")
            if not isinstance(base, (int, float)) or base <= 0:
                sys.exit(f"error: bad baseline {metric}: {base!r}")
            floor = base * (1.0 - args.max_regression)
            ratio = cur / base
            print(f"{metric}: current {cur:.0f}, baseline {base:.0f} "
                  f"(ratio {ratio:.2f}, floor {floor:.0f})")
            if cur < floor:
                failures.append(f"{metric} regressed more than "
                                f"{args.max_regression:.0%} "
                                f"(ratio {ratio:.2f})")

        # Resource ceilings: lower is better, gated only once the baseline
        # records them (tables baselines predate the stress metrics).
        def lookup(doc, section, key):
            value = doc.get(section, {}).get(key)
            return value if isinstance(value, (int, float)) else None

        ceilings = [("derived", "peak_rss_bytes"),
                    ("gauges", "stress/wall_us")]
        for section, metric in ceilings:
            base = lookup(baseline, section, metric)
            if base is None or base <= 0:
                continue
            cur = lookup(current, section, metric)
            if cur is None or cur <= 0:
                sys.exit(f"error: bad current {section}.{metric}: {cur!r}")
            ceiling = base * (1.0 + args.max_regression)
            ratio = cur / base
            print(f"{section}.{metric}: current {cur:.0f}, "
                  f"baseline {base:.0f} "
                  f"(ratio {ratio:.2f}, ceiling {ceiling:.0f})")
            if cur > ceiling:
                failures.append(f"{section}.{metric} grew more than "
                                f"{args.max_regression:.0%} "
                                f"(ratio {ratio:.2f})")

    # Wide-kernel speedup gate: a within-run throughput ratio, so it holds
    # on loaded shared runners where absolute rates swing 2x.
    if args.kernels:
        kernels = load(args.kernels)
        circuits = kernels.get("circuits")
        if not isinstance(circuits, list) or not circuits:
            sys.exit(f"error: {args.kernels} has no `circuits` array")
        for circuit in circuits:
            rates = {row.get("kernel"): row.get("gate_evals_per_sec")
                     for row in circuit.get("kernels", [])}
            name = circuit.get("name", "?")
            for kernel in ("compiled", "wide_fused"):
                if not isinstance(rates.get(kernel), (int, float)) \
                        or rates[kernel] <= 0:
                    sys.exit(f"error: {args.kernels}: circuit {name} has no "
                             f"`{kernel}` rate")
            ratio = rates["wide_fused"] / rates["compiled"]
            print(f"kernels[{name}]: wide_fused {rates['wide_fused']:.0f} "
                  f"/ compiled {rates['compiled']:.0f} = {ratio:.2f}x "
                  f"(floor {args.wide_multiple:.2f}x)")
            if ratio < args.wide_multiple:
                failures.append(
                    f"wide_fused kernel on {name} is only {ratio:.2f}x the "
                    f"scalar compiled kernel (need {args.wide_multiple:.2f}x)")

    if args.current:
        for field in ("gate_evals_total", "wall_us_total",
                      "partition_imbalance", "omission_attempts_total",
                      "omission_wall_us"):
            c = current["derived"].get(field)
            b = baseline["derived"].get(field)
            print(f"{field}: current {c}, baseline {b}")

    if failures:
        sys.exit("FAIL: " + "; ".join(failures))
    print("OK: metrics within the allowed regression envelope")


if __name__ == "__main__":
    main()
