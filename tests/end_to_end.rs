//! End-to-end integration tests spanning all workspace crates: the complete
//! proposed procedure on the s27 golden fixture and on synthetic circuits,
//! checked against the paper's structural claims.

use atspeed::atpg::comb_tset::{self, CombTsetConfig};
use atspeed::circuit::bench_fmt::s27;
use atspeed::circuit::synth::{generate, SynthSpec};
use atspeed::core::dynamic::{dynamic_schedule, DynamicConfig};
use atspeed::core::phase4::baseline4;
use atspeed::core::{Pipeline, T0Source};
use atspeed::sim::fault::FaultUniverse;

#[test]
fn s27_proposed_procedure_end_to_end() {
    let nl = s27();
    let r = Pipeline::new(&nl)
        .t0_source(T0Source::Directed { max_len: 64 })
        .seed(2001)
        .run()
        .unwrap();

    // Classic s27 facts.
    assert_eq!(r.n_sv, 3);
    assert_eq!(r.total_faults, 32);
    assert_eq!(r.final_detected, 32);

    // Paper's structural claims.
    assert!(r.t0_detected <= r.tau_seq_detected, "F_SI ⊇ F_0");
    assert!(
        r.tau_seq_len <= r.t0_len,
        "T_seq is a compacted prefix of T_0"
    );
    assert!(r.comp_cycles <= r.init_cycles, "Phase 4 never hurts");

    // Cost model spot-check: k tests -> (k+1)*N_SV + total vectors.
    let k = r.initial_set.len();
    assert_eq!(r.init_cycles, (k + 1) * 3 + r.initial_set.total_vectors());
}

#[test]
fn proposed_final_set_actually_detects_what_it_claims() {
    let nl = s27();
    let r = Pipeline::new(&nl).seed(3).run().unwrap();
    let universe = FaultUniverse::full(&nl);
    let reps = universe.representatives().to_vec();
    let measured = r.compacted_set.count_detected(&nl, &universe, &reps);
    assert_eq!(
        measured, r.final_detected,
        "reported final coverage must match re-simulation"
    );
}

#[test]
fn proposed_beats_baseline4_initial_on_synthetic_circuit() {
    // The paper's headline (Table 3): the proposed initial test set needs
    // fewer clock cycles than [4]'s initial test set. With few flip-flops
    // the margin shrinks, so use a state-heavy circuit.
    let nl = generate(&SynthSpec::new("headline", 4, 3, 24, 200, 77)).unwrap();
    let universe = FaultUniverse::full(&nl);
    let targets = universe.representatives().to_vec();
    let r = Pipeline::new(&nl)
        .t0_source(T0Source::Directed { max_len: 512 })
        .seed(2001)
        .run()
        .unwrap();
    let b4 = baseline4(&nl, &universe, &r.comb_tests, &targets);
    let n_sv = nl.num_ffs();
    assert!(
        r.init_cycles < b4.initial.clock_cycles(n_sv),
        "proposed init ({}) should beat [4] init ({})",
        r.init_cycles,
        b4.initial.clock_cycles(n_sv)
    );
    // And the proposed sets carry much longer at-speed sequences.
    let prop_max = r.at_speed_comp.unwrap().max;
    let b4_max = b4.compacted.at_speed_stats().unwrap().max;
    assert!(
        prop_max >= b4_max,
        "proposed at-speed max {prop_max} vs [4] {b4_max}"
    );
}

#[test]
fn all_three_methods_cover_the_same_fault_universe() {
    let nl = generate(&SynthSpec::new("coverage", 4, 2, 10, 120, 5)).unwrap();
    let universe = FaultUniverse::full(&nl);
    let targets = universe.representatives().to_vec();
    let r = Pipeline::new(&nl).seed(1).run().unwrap();
    let b4 = baseline4(&nl, &universe, &r.comb_tests, &targets);
    let dyn_r = dynamic_schedule(
        &nl,
        &universe,
        &r.comb_tests,
        &targets,
        &DynamicConfig::default(),
    );

    // [4]'s compacted set must cover whatever its initial set covered.
    let init_cov = b4.initial.count_detected(&nl, &universe, &targets);
    let comp_cov = b4.compacted.count_detected(&nl, &universe, &targets);
    assert!(comp_cov >= init_cov);

    // The proposed final set covers everything C can cover.
    assert!(r.final_detected >= comp_cov);

    // The dynamic baseline reaches a comparable coverage level.
    assert!(dyn_r.detected * 10 >= comp_cov * 8);
}

#[test]
fn shared_comb_test_set_keeps_flows_comparable() {
    // The paper uses the same C for [4] and the proposed procedure; the
    // pipeline result must expose that C for baselines.
    let nl = s27();
    let r = Pipeline::new(&nl).seed(9).run().unwrap();
    let universe = FaultUniverse::full(&nl);
    let c = comb_tset::generate(&nl, &universe, &{
        let mut cfg = CombTsetConfig::default();
        cfg.seed = cfg.seed.wrapping_add(9u64.wrapping_mul(0x9e37_79b9));
        cfg
    })
    .unwrap();
    assert_eq!(r.comb_tests.len(), c.tests.len());
    assert_eq!(r.num_comb_tests, c.tests.len());
}

#[test]
fn pipeline_with_random_t0_reaches_complete_coverage_on_s27() {
    let nl = s27();
    let r = Pipeline::new(&nl)
        .t0_source(T0Source::Random { len: 200 })
        .seed(4)
        .run()
        .unwrap();
    assert_eq!(r.final_detected, 32);
    assert_eq!(r.t0_len, 200);
    // The paper's Table 5 shape: random T0 detects fewer faults than the
    // scan-based tau_seq built from it.
    assert!(r.t0_detected <= r.tau_seq_detected);
}
