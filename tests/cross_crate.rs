//! Cross-crate consistency tests: the same questions answered through
//! different engines must agree.

use atspeed::atpg::comb_tset::{self, CombTsetConfig};
use atspeed::atpg::random_t0;
use atspeed::circuit::bench_fmt::s27;
use atspeed::circuit::catalog;
use atspeed::circuit::synth::{generate, SynthSpec};
use atspeed::core::{ScanTest, TestSet};
use atspeed::sim::fault::{FaultId, FaultUniverse};
use atspeed::sim::{CombFaultSim, CombTest, SeqFaultSim, V3};

/// The combinational test set's self-reported coverage must agree with an
/// independent re-simulation through the *sequential* engine (as
/// single-vector scan tests).
#[test]
fn comb_test_set_coverage_cross_checks() {
    let nl = s27();
    let u = FaultUniverse::full(&nl);
    let set = comb_tset::generate(&nl, &u, &CombTsetConfig::default()).unwrap();
    let reps: Vec<FaultId> = u.representatives().to_vec();

    let scan_set = TestSet::from_comb_tests(&set.tests);
    let seq_count = scan_set.count_detected(&nl, &u, &reps);
    assert_eq!(seq_count, set.detected, "PPSFP vs sequential engine");
}

/// Catalog circuits instantiate, collapse, and simulate without issue.
#[test]
fn catalog_circuits_are_simulable() {
    for name in ["s298", "s344", "b01", "b02", "b06"] {
        let nl = catalog::by_name(name).unwrap().instantiate();
        let u = FaultUniverse::full(&nl);
        assert!(u.num_collapsed() > 0, "{name}");
        let mut fsim = SeqFaultSim::new(&nl);
        let seq = random_t0(&nl, 16, 1);
        let init = vec![V3::X; nl.num_ffs()];
        let det = fsim.detect(&init, &seq, u.representatives(), &u, false);
        assert_eq!(det.len(), u.num_collapsed(), "{name}");
    }
}

/// Equivalence classes behave equivalently: every member of a collapsed
/// class has the same detection verdict under a batch of scan tests.
#[test]
fn collapsed_classes_are_behaviorally_equivalent() {
    let nl = generate(&SynthSpec::new("equiv", 3, 2, 4, 40, 9)).unwrap();
    let u = FaultUniverse::full(&nl);
    let mut sim = CombFaultSim::new(&nl);
    // A deterministic batch of tests.
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x & 1 == 1
    };
    let tests: Vec<CombTest> = (0..32)
        .map(|_| {
            CombTest::new(
                (0..nl.num_ffs()).map(|_| V3::from_bool(next())).collect(),
                (0..nl.num_pis()).map(|_| V3::from_bool(next())).collect(),
            )
        })
        .collect();
    let all: Vec<FaultId> = u.all_ids().collect();
    let masks = sim.detect_block(&tests, &all, &u);
    for (k, &fid) in all.iter().enumerate() {
        let rep = u.class_of(fid);
        let rep_mask = masks[rep.index()];
        assert_eq!(
            masks[k] != 0,
            rep_mask != 0,
            "fault {} disagrees with its class representative {}",
            u.fault(fid).describe(&nl),
            u.fault(rep).describe(&nl)
        );
    }
}

/// A combined test (T_i ++ T_j from SI_i) detects at least the faults that
/// τ_i alone detects — the foundation of the Phase 4 combining check.
#[test]
fn concatenation_preserves_prefix_detection() {
    let nl = s27();
    let u = FaultUniverse::full(&nl);
    let reps: Vec<FaultId> = u.representatives().to_vec();
    let t0 = random_t0(&nl, 4, 3);
    let t1 = random_t0(&nl, 3, 8);
    let a = ScanTest::new(vec![V3::Zero; 3], t0.clone());
    let combined = ScanTest::new(vec![V3::Zero; 3], t0.concat(&t1));
    let det_a = a.detects(&nl, &u, &reps);
    let det_c = combined.detects(&nl, &u, &reps);
    for k in 0..reps.len() {
        // PO detections of the prefix carry over; scan-out-only detections
        // of τ_i may be lost, which is exactly why Phase 4 re-simulates.
        // So we check the weaker, always-true direction on PO-only runs:
        let mut fsim = SeqFaultSim::new(&nl);
        let po_only_a = fsim.detect(&a.si, &a.seq, &[reps[k]], &u, false)[0];
        if po_only_a {
            assert!(
                det_c[k],
                "PO-detected fault lost by concatenation: {}",
                u.fault(reps[k]).describe(&nl)
            );
        }
        let _ = det_a;
    }
}

/// The `.bench` writer and parser round-trip a catalog circuit and the
/// round-tripped netlist has the identical fault universe.
#[test]
fn bench_round_trip_preserves_fault_universe() {
    let nl = catalog::by_name("b02").unwrap().instantiate();
    let text = atspeed::circuit::bench_fmt::write(&nl);
    let back = atspeed::circuit::bench_fmt::parse("b02", &text).unwrap();
    let u1 = FaultUniverse::full(&nl);
    let u2 = FaultUniverse::full(&back);
    assert_eq!(u1.num_faults(), u2.num_faults());
    assert_eq!(u1.num_collapsed(), u2.num_collapsed());
}
