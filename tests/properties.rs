//! Workspace-level property tests: the full proposed procedure on random
//! small circuits, checked against the paper's invariants.

use atspeed::circuit::synth::{generate, SynthSpec};
use atspeed::circuit::Netlist;
use atspeed::core::{Pipeline, T0Source};
use atspeed::sim::fault::FaultUniverse;
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..5, 1usize..4, 2usize..8, 12usize..60, any::<u64>()).prop_map(
        |(pis, pos, ffs, gates, seed)| {
            generate(&SynthSpec::new("prop", pis, pos, ffs, gates, seed)).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pipeline upholds the paper's structural guarantees on any
    /// circuit: monotone detection across stages, sequences never longer
    /// than T0, compaction never increasing cost, and the cost model
    /// consistent with the test sets it reports.
    #[test]
    fn pipeline_invariants_on_random_circuits(
        nl in arb_netlist(),
        seed in any::<u64>(),
        t0_len in 16usize..64,
    ) {
        let r = Pipeline::new(&nl)
            .t0_source(T0Source::Random { len: t0_len })
            .seed(seed)
            .run()
            .unwrap();
        prop_assert!(r.t0_detected <= r.tau_seq_detected, "F_SI ⊇ F_0");
        prop_assert!(r.tau_seq_detected <= r.final_detected);
        prop_assert!(r.final_detected <= r.total_faults);
        prop_assert!(r.tau_seq_len <= r.t0_len);
        prop_assert!(r.tau_seq_len >= 1);
        prop_assert!(r.comp_cycles <= r.init_cycles);
        prop_assert_eq!(
            r.init_cycles,
            r.initial_set.clock_cycles(nl.num_ffs())
        );
        prop_assert_eq!(
            r.comp_cycles,
            r.compacted_set.clock_cycles(nl.num_ffs())
        );
        // Phase 4 never changes the total vector count, only the test
        // count (the paper's combining argument).
        prop_assert_eq!(
            r.initial_set.total_vectors(),
            r.compacted_set.total_vectors()
        );
        prop_assert!(r.compacted_set.len() <= r.initial_set.len());
    }

    /// The reported final coverage matches an independent re-simulation of
    /// the compacted set, and the compacted set never detects fewer faults
    /// than the initial set.
    #[test]
    fn reported_coverage_is_reproducible(
        nl in arb_netlist(),
        seed in any::<u64>(),
    ) {
        let r = Pipeline::new(&nl)
            .t0_source(T0Source::Random { len: 32 })
            .seed(seed)
            .run()
            .unwrap();
        let u = FaultUniverse::full(&nl);
        let reps = u.representatives().to_vec();
        let init_cov = r.initial_set.count_detected(&nl, &u, &reps);
        let comp_cov = r.compacted_set.count_detected(&nl, &u, &reps);
        prop_assert_eq!(init_cov, r.final_detected, "initial set coverage");
        prop_assert!(comp_cov >= init_cov, "phase 4 must preserve coverage");
    }
}
